"""Golden regression: PCTWM litmus hit rates are pinned exactly.

``scripts/regen_golden_rates.py`` records the exact number of
bug-finding runs for SB/MP/LB/IRIW over a (d, h) sweep with fixed
seeds.  PCTWM's choices are a pure function of the seed and the
engine's candidate/priority queries, so the counts must reproduce
byte-exactly — any drift means a scheduling-visible behaviour change
(intended changes regenerate the golden file and review the diff).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "litmus_rates.json"


def load_regen_module():
    spec = importlib.util.spec_from_file_location(
        "regen_golden_rates",
        REPO_ROOT / "scripts" / "regen_golden_rates.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def recomputed():
    return load_regen_module().compute_golden()


def test_golden_file_shape(golden):
    assert golden["meta"]["scheduler"] == "pctwm"
    assert set(golden["rates"]) == {"SB", "MP", "LB", "IRIW"}
    for cells in golden["rates"].values():
        assert len(cells) == 9  # d in 1..3 x h in 1..3
        assert all(isinstance(hits, int) for hits in cells.values())


def test_hit_rates_reproduce_exactly(golden, recomputed):
    assert recomputed["meta"] == golden["meta"], (
        "grid parameters changed: regenerate tests/golden/litmus_rates.json"
    )
    for name, cells in golden["rates"].items():
        assert recomputed["rates"][name] == cells, (
            f"{name} hit counts drifted from the golden file; if the "
            "change is intentional run scripts/regen_golden_rates.py "
            "and review the diff"
        )


def test_rates_are_discriminative(golden):
    """The golden grid is not degenerate: SB is found often, and the
    harder shapes behave as the substrate predicts (IRIW needs d >= 2;
    LB's weak outcome is unreachable for an interleaving-based engine)."""
    rates = golden["rates"]
    assert all(hits > 0 for hits in rates["SB"].values())
    assert any(hits > 0 for hits in rates["MP"].values())
    assert rates["IRIW"]["d=1,h=1"] == 0
    assert any(hits > 0 for hits in rates["IRIW"].values())
    assert all(hits == 0 for hits in rates["LB"].values())
