"""Which Table 1 bugs survive on x86-TSO hardware?

A practically interesting question the two engines can answer together:
each benchmark's seeded bug is a specific weak-memory pattern, and TSO
only exhibits store→load reordering.  So the SB-family bugs (dekker) and
the delayed-payload publication bugs (msqueue, treiber — payload store
still buffered while the published structure is visible) remain
reachable on x86, while the message-passing-family bugs (barrier,
cldeque, mpmcqueue, linuxrwlocks, rwlock, seqlock, spsc) require W→W or
R→R reordering that TSO forbids.
"""

import pytest

from repro.tso import TsoDelayedWriteScheduler, TsoNaiveScheduler, run_tso
from repro.workloads import BENCHMARKS, spsc, treiber

TRIALS = 200

#: Bug families by required reordering.
TSO_REACHABLE = ("dekker", "msqueue")
TSO_SAFE = ("barrier", "cldeque", "mpmcqueue", "linuxrwlocks", "rwlock",
            "seqlock")


def tso_hits(factory, make, trials=TRIALS):
    return sum(
        run_tso(factory(), make(seed), keep_graph=False,
                max_steps=50000).bug_found
        for seed in range(trials)
    )


class TestBenchmarksUnderTso:
    @pytest.mark.parametrize("name", TSO_REACHABLE)
    def test_store_buffering_family_reachable(self, name):
        info = BENCHMARKS[name]
        hits = tso_hits(info.build,
                        lambda s: TsoNaiveScheduler(seed=s))
        hits += tso_hits(
            info.build,
            lambda s: TsoDelayedWriteScheduler(2, info.paper_k, seed=s),
        )
        assert hits > 0, f"{name}'s bug should exist on x86-TSO"

    @pytest.mark.parametrize("name", TSO_SAFE)
    def test_message_passing_family_safe(self, name):
        info = BENCHMARKS[name]
        hits = tso_hits(info.build,
                        lambda s: TsoNaiveScheduler(seed=s), 100)
        hits += tso_hits(
            info.build,
            lambda s: TsoDelayedWriteScheduler(3, info.paper_k, seed=s),
            100,
        )
        assert hits == 0, f"{name}'s bug needs more than W->R reordering"

    def test_treiber_reachable_under_tso(self):
        """Treiber's payload-after-publication is a buffered-store bug."""
        hits = tso_hits(treiber,
                        lambda s: TsoDelayedWriteScheduler(2, 20, seed=s))
        assert hits > 0

    def test_spsc_safe_under_tso(self):
        """SPSC's bug is pure message passing: W->W order saves it."""
        hits = tso_hits(spsc, lambda s: TsoNaiveScheduler(seed=s))
        hits += tso_hits(spsc,
                         lambda s: TsoDelayedWriteScheduler(2, 8, seed=s))
        assert hits == 0

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_fixed_variants_safe_under_tso_too(self, name):
        info = BENCHMARKS[name]
        hits = tso_hits(lambda: info.factory(fixed=True),
                        lambda s: TsoNaiveScheduler(seed=s), 60)
        assert hits == 0, f"{name}-fixed flagged under TSO"
