"""Tests for dynamic thread creation (SpawnOp)."""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
)
from repro.memory.axioms import is_consistent
from repro.memory.events import RLX
from repro.runtime import Program, join, require, run_once, spawn

SCHEDULERS = [
    lambda s: NaiveRandomScheduler(seed=s),
    lambda s: C11TesterScheduler(seed=s),
    lambda s: PCTScheduler(2, 30, seed=s),
    lambda s: PCTWMScheduler(2, 15, 2, seed=s),
    lambda s: POSScheduler(seed=s),
]


def fork_join_program():
    p = Program("fork-join")
    x = p.atomic("X", 0)

    def child(n):
        yield x.fetch_add(n, RLX)
        return n

    def root():
        names = []
        for i in (1, 2, 3):
            names.append((yield spawn(child, i)))
        total = 0
        for name in names:
            total += yield join(name)
        final = yield x.fetch_add(0, RLX)  # RMW-read
        require(final == 6, f"increments lost: {final}")
        return (total, final)

    p.add_thread(root)
    return p


class TestSpawnBasics:
    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_fork_join_under_every_scheduler(self, make):
        for seed in range(20):
            result = run_once(fork_join_program(), make(seed))
            assert not result.bug_found, (seed, result.bug_message)
            assert result.thread_results["root"] == (6, 6)

    def test_spawn_result_is_joinable_name(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def child():
            yield x.store(1, RLX)
            return "done"

        def root():
            name = yield spawn(child)
            got = yield join(name)
            return (name, got)

        p.add_thread(root)
        result = run_once(p, C11TesterScheduler(seed=0))
        name, got = result.thread_results["root"]
        assert name == "child"
        assert got == "done"

    def test_duplicate_names_uniquified(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def child():
            yield x.fetch_add(1, RLX)

        def root():
            first = yield spawn(child, name="kid")
            second = yield spawn(child, name="kid")
            yield join(first)
            yield join(second)
            return (first, second)

        p.add_thread(root)
        result = run_once(p, C11TesterScheduler(seed=0))
        first, second = result.thread_results["root"]
        assert first != second

    def test_spawn_establishes_happens_before(self):
        """The parent's pre-spawn relaxed write is visible to the child."""
        p = Program("p")
        x = p.atomic("X", 0)

        def child():
            value = yield x.load(RLX)
            require(value == 9, f"child missed parent's write: {value}")
            return value

        def root():
            yield x.store(9, RLX)
            name = yield spawn(child)
            return (yield join(name))

        p.add_thread(root)
        for make in SCHEDULERS:
            for seed in range(15):
                result = run_once(p, make(seed))
                assert not result.bug_found, (make, seed,
                                              result.bug_message)

    def test_nested_spawn(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def grandchild():
            yield x.fetch_add(1, RLX)
            return "gc"

        def child():
            name = yield spawn(grandchild)
            yield join(name)
            yield x.fetch_add(1, RLX)
            return "c"

        def root():
            name = yield spawn(child)
            yield join(name)
            final = yield x.fetch_add(0, RLX)
            require(final == 2, f"nested increments lost: {final}")

        p.add_thread(root)
        for seed in range(20):
            result = run_once(p, PCTWMScheduler(1, 10, 1, seed=seed))
            assert not result.bug_found

    def test_spawned_executions_stay_consistent(self):
        for seed in range(15):
            result = run_once(fork_join_program(),
                              C11TesterScheduler(seed=seed))
            assert is_consistent(result.graph)

    def test_races_detected_in_spawned_threads(self):
        p = Program("p")
        d = p.non_atomic("D", 0)

        def child(v):
            yield d.store(v)

        def root():
            a = yield spawn(child, 1)
            b = yield spawn(child, 2)
            yield join(a)
            yield join(b)

        p.add_thread(root)
        raced = sum(
            bool(run_once(p, C11TesterScheduler(seed=s)).races)
            for s in range(20)
        )
        assert raced > 0
