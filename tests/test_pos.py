"""Tests for the POS extension baseline."""

from repro.core import POSScheduler
from repro.litmus import corr, load_buffering, mp2, store_buffering
from repro.runtime import run_once
from tests.helpers import hit_count


class TestPOS:
    def test_finds_weak_sb(self):
        assert hit_count(store_buffering,
                         lambda s: POSScheduler(seed=s), 200) > 0

    def test_finds_mp2(self):
        assert hit_count(mp2, lambda s: POSScheduler(seed=s), 400) > 0

    def test_respects_coherence(self):
        assert hit_count(corr, lambda s: POSScheduler(seed=s), 200) == 0

    def test_no_out_of_thin_air(self):
        assert hit_count(load_buffering,
                         lambda s: POSScheduler(seed=s), 200) == 0

    def test_reproducible(self):
        a = run_once(mp2(), POSScheduler(seed=9))
        b = run_once(mp2(), POSScheduler(seed=9))
        assert a.thread_results == b.thread_results

    def test_priorities_cleaned_up(self):
        sched = POSScheduler(seed=0)
        run_once(mp2(), sched)
        assert not sched._priorities  # all executed ops released

    def test_runs_benchmarks(self):
        from repro.workloads import BENCHMARKS
        for name in ("dekker", "msqueue", "seqlock"):
            result = run_once(BENCHMARKS[name].build(), POSScheduler(seed=1))
            assert not result.limit_exceeded
