"""Regression tests for stable op identity (the ``id(op)`` reuse bug).

PCTWM must count every pending communication op exactly once and
remember which ops were selected as communication sinks.  Keying those
sets on ``id(op)`` is unsound: ops are garbage-collected right after
they execute, CPython recycles their addresses almost immediately, and a
recycled id makes the scheduler silently skip counting a fresh op (or
treat it as an already-selected sink) — wrong statistics with no error.
Ops now carry a process-unique monotonic ``uid`` instead.
"""

import gc

from repro.core import PCTWMNoDelay, PCTWMScheduler
from repro.memory.events import RLX
from repro.runtime import Program, run_once
from repro.runtime.ops import LoadOp, StoreOp


def _churn_program(iterations: int = 300) -> Program:
    """One thread that burns through many short-lived op objects.

    Each loop iteration allocates a fresh LoadOp and StoreOp which are
    dropped as soon as they execute, so CPython reuses their addresses —
    exactly the situation that confused ``id``-keyed bookkeeping.  The
    loaded value changes every iteration, so the spin heuristic never
    fires and every load is scheduled normally.
    """
    p = Program("churn")
    x = p.atomic("X", 0)

    def worker():
        value = 0
        for _ in range(iterations):
            value = yield x.load(RLX)
            yield x.store(value + 1, RLX)
        return value

    p.add_thread(worker)
    return p


class TestOpUids:
    def test_uids_monotonic_and_never_recycled(self):
        """Op ids get reused after GC; uids must not be."""
        seen_ids = set()
        seen_uids = set()
        id_was_recycled = False
        for _ in range(5000):
            op = LoadOp("X", RLX)
            if id(op) in seen_ids:
                id_was_recycled = True
            seen_ids.add(id(op))
            assert op.uid not in seen_uids
            seen_uids.add(op.uid)
        # The premise of the bug: CPython really does recycle id() for
        # garbage-collected ops, so id-keyed sets alias distinct ops.
        assert id_was_recycled

    def test_uids_unique_across_op_kinds(self):
        ops = [LoadOp("X"), StoreOp("X", 1), LoadOp("Y"), StoreOp("Y", 2)]
        uids = [op.uid for op in ops]
        assert len(set(uids)) == len(uids)
        assert uids == sorted(uids)


class _StubThread:
    def __init__(self, tid):
        self.tid = tid
        self.pending = None
        self.site_key = (tid, 0)


class _StubSpins:
    def is_spinning(self, key):
        return False


class _StubState:
    """The minimal ExecutionState surface ``choose_thread`` consults."""

    def __init__(self):
        self.threads = [_StubThread(0)]
        self.spins = _StubSpins()
        self.init_writes = {}

    def enabled_tids(self):
        return [0]

    def peek(self, tid):
        return self.threads[tid].pending


class TestStaleIdentityRegression:
    def test_churned_pending_ops_are_all_counted(self):
        """Drive ``choose_thread`` with maximal op churn.

        Each iteration allocates one fresh LoadOp and frees the previous
        one, so CPython hands the next op the address the last one
        vacated.  Under the old ``id(op)`` bookkeeping the recycled
        address was already in ``counted`` and the scheduler counted *one*
        of the 200 communication events; with stable uids it counts all
        of them.
        """
        state = _StubState()
        sched = PCTWMScheduler(depth=1, k_com=200, seed=0)
        sched.on_run_start(state)
        for _ in range(200):
            state.threads[0].pending = LoadOp("X", RLX)
            assert sched.choose_thread(state) == 0
            state.threads[0].pending = None
        assert sched._i == 200
        assert len(sched._counted) == 200

    def test_every_communication_op_counted_once(self):
        """``counted`` must grow by one per communication op, despite churn.

        With ``id(op)`` keys this fails: stale ids of collected ops stay
        in the set forever, a recycled address makes a fresh load appear
        already-counted, and the Algorithm 1 event counter falls behind
        the true ``k_com``.
        """
        gc.collect()
        sched = PCTWMScheduler(depth=1, k_com=300, seed=42)
        run = run_once(_churn_program(300), sched, keep_graph=False)
        assert not run.bug_found
        assert run.k_com == 300  # the 300 relaxed loads
        assert sched._i == run.k_com
        assert len(sched._counted) == run.k_com

    def test_nodelay_ablation_counts_once_too(self):
        """The no-delay ablation shares the counting logic; audit it."""
        sched = PCTWMNoDelay(depth=1, k_com=300, seed=42)
        run = run_once(_churn_program(300), sched, keep_graph=False)
        assert sched._i == run.k_com == 300

    def test_counts_stable_across_repeated_runs(self):
        """Back-to-back runs reuse freed memory heavily; counts must not
        drift from run to run."""
        for seed in range(5):
            sched = PCTWMScheduler(depth=2, k_com=100, seed=seed)
            run = run_once(_churn_program(100), sched, keep_graph=False)
            assert sched._i == run.k_com == 100
