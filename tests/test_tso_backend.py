"""The generic x86-TSO backend behind the memory-model interface.

Regression coverage for the three event-graph corruption bugs the old
demo engine hid, plus the backend's contracts with the probabilistic
schedulers and the campaign/artifact/replay harness:

* declared memory orders survive the store-buffer path (they were
  hard-coded to RELAXED), so seq_cst accesses populate ``sc_order``;
* flushes commit through the graph's mo-insertion path, so flushed TSO
  graphs satisfy the coherence axioms;
* runs truncated at ``max_steps`` drain their buffers instead of
  leaving reads dangling from never-committed writes;
* campaigns, bug artifacts, and replay run end-to-end under
  ``model="tso"`` and record the model for replay dispatch.
"""

from __future__ import annotations

import pytest

from repro.core import NaiveRandomScheduler, PCTScheduler, PCTWMScheduler
from repro.core.pos import POSScheduler
from repro.litmus import ALL_LITMUS
from repro.litmus.programs import store_buffering
from repro.memory import check_consistency, resolve_model
from repro.memory.events import RLX, SC
from repro.runtime import Program
from repro.runtime.errors import ProgramDefinitionError
from repro.tso import TsoExecutionState

TSO = resolve_model("tso")

SCHEDULER_MAKERS = {
    "naive": lambda seed: NaiveRandomScheduler(seed=seed),
    "pct": lambda seed: PCTScheduler(2, 16, seed=seed),
    "pctwm": lambda seed: PCTWMScheduler(2, 8, 2, seed=seed),
    "pos": lambda seed: POSScheduler(seed=seed),
}


class TestDeclaredOrders:
    """Satellite 1: the backend must not discard declared memory orders."""

    def test_sc_program_populates_sc_order(self):
        result = TSO.run_once(store_buffering(order=SC),
                              NaiveRandomScheduler(seed=0),
                              max_steps=2000)
        graph = result.graph
        assert graph is not None
        # 2 seq_cst stores + 2 seq_cst loads, all in the global SC order.
        assert len(graph.sc_order) == 4

    def test_labels_round_trip_declared_orders(self):
        for order in (RLX, SC):
            result = TSO.run_once(store_buffering(order=order),
                                  NaiveRandomScheduler(seed=1),
                                  max_steps=2000)
            accesses = [e for e in result.graph.events
                        if e.tid >= 0 and e.loc in ("X", "Y")
                        and (e.is_read or e.is_write)]
            assert accesses and all(e.order is order for e in accesses)

    def test_sc_store_buffering_is_sequentially_consistent(self):
        # MOV+MFENCE semantics: seq_cst stores drain the issuing buffer,
        # so the SB weak outcome must be unreachable.
        for seed in range(100):
            result = TSO.run_once(store_buffering(order=SC),
                                  NaiveRandomScheduler(seed=seed),
                                  max_steps=2000, keep_graph=False)
            assert not result.bug_found


class TestFlushCommitPath:
    """Satellite 2: flushes insert into mo via the graph, verifiably."""

    def test_flushed_graphs_satisfy_consistency_axioms(self):
        for name in ("SB", "MP", "LB", "IRIW", "2+2W"):
            factory = ALL_LITMUS[name]
            for seed in range(10):
                result = TSO.run_once(factory(),
                                      NaiveRandomScheduler(seed=seed),
                                      max_steps=2000)
                assert check_consistency(result.graph) == []

    def test_sanitize_reports_clean_under_tso(self):
        result = TSO.run_once(ALL_LITMUS["SB"](),
                              PCTWMScheduler(2, 8, 2, seed=5),
                              max_steps=2000, sanitize=True)
        assert result.violations == []
        assert not result.inconsistent

    def test_all_writes_committed_on_clean_exit(self):
        result = TSO.run_once(ALL_LITMUS["2+2W"](),
                              NaiveRandomScheduler(seed=3), max_steps=2000)
        writes = [e for e in result.graph.events if e.is_write]
        assert writes and all(e.mo_index >= 0 for e in writes)


class TestTruncationDrain:
    """Satellite 3: hitting max_steps must not leave dangling reads."""

    @staticmethod
    def _spinner() -> Program:
        p = Program("tso-truncate")
        x = p.atomic("X", 0)

        def writer():
            for i in range(1, 200):
                yield x.store(i, RLX)

        def reader():
            for _ in range(200):
                yield x.load(RLX)

        p.add_thread(writer)
        p.add_thread(reader)
        return p

    def test_truncated_run_commits_buffered_writes(self):
        for seed in range(8):
            result = TSO.run_once(self._spinner(),
                                  NaiveRandomScheduler(seed=seed),
                                  max_steps=40)
            assert result.limit_exceeded
            writes = [e for e in result.graph.events if e.is_write]
            assert all(e.mo_index >= 0 for e in writes)
            # The drained graph must still be a consistent execution:
            # every read's source sits in mo, so fr() is well-defined.
            assert check_consistency(result.graph) == []


class TestSchedulerContracts:
    def test_weak_outcome_reachable_under_every_scheduler(self):
        factory = ALL_LITMUS["SB"]
        for name, make in SCHEDULER_MAKERS.items():
            hits = sum(
                TSO.run_once(factory(), make(seed), max_steps=2000,
                             keep_graph=False).bug_found
                for seed in range(60)
            )
            assert hits > 0, f"{name} never delayed a flush into SB's window"

    def test_forbidden_shapes_never_hit(self):
        for name in ("MP", "LB", "IRIW", "CoRR", "2+2W"):
            factory = ALL_LITMUS[name]
            for seed in range(40):
                result = TSO.run_once(factory(),
                                      NaiveRandomScheduler(seed=seed),
                                      max_steps=2000, keep_graph=False)
                assert not result.bug_found, \
                    f"{name} weak outcome is forbidden under TSO"

    def test_runs_are_seed_deterministic(self):
        factory = ALL_LITMUS["SB"]
        for seed in (0, 7, 23):
            a = TSO.run_once(factory(), PCTWMScheduler(2, 8, 2, seed=seed),
                             max_steps=2000)
            b = TSO.run_once(factory(), PCTWMScheduler(2, 8, 2, seed=seed),
                             max_steps=2000)
            def trace(result):
                return [(e.tid, e.kind, e.order, e.loc, e.rval, e.wval)
                        for e in result.graph.events]

            assert a.bug_found == b.bug_found
            assert trace(a) == trace(b)

    def test_pooled_state_reuse_is_seed_identical(self):
        factory = ALL_LITMUS["SB"]
        program = factory()
        state = TSO.make_state(program)
        scheduler = PCTWMScheduler(2, 8, 2, seed=0)
        pooled = []
        for seed in range(30):
            state.reset(program)
            scheduler.reseed(seed)
            pooled.append(TSO.run_once(program, scheduler, state=state,
                                       max_steps=2000,
                                       keep_graph=False).bug_found)
        fresh = [
            TSO.run_once(factory(), PCTWMScheduler(2, 8, 2, seed=seed),
                         max_steps=2000, keep_graph=False).bug_found
            for seed in range(30)
        ]
        assert pooled == fresh

    def test_spawn_is_rejected(self):
        # Flush agents are allocated once at run start, so runtime
        # thread creation has no buffer to pair with.
        from repro.runtime.ops import SpawnOp

        p = Program("tso-spawn")
        p.atomic("X", 0)

        def child():
            yield from ()

        def body():
            yield SpawnOp(child)

        p.add_thread(body)
        with pytest.raises(ProgramDefinitionError):
            TSO.run_once(p, NaiveRandomScheduler(seed=0),
                         max_steps=100, keep_graph=False)


class TestModelRegistry:
    def test_resolve_model(self):
        assert resolve_model("tso").name == "tso"
        assert resolve_model("c11").name == "c11"
        with pytest.raises(ValueError, match="unknown memory model"):
            resolve_model("power")

    def test_scheduler_allowlist(self):
        tso = resolve_model("tso")
        assert tso.supports_scheduler("pctwm")
        assert not tso.supports_scheduler("c11tester")
        assert resolve_model("c11").supports_scheduler("c11tester")


class TestHarnessEndToEnd:
    def test_campaign_artifacts_and_replay_under_tso(self, tmp_path):
        from repro.core.factory import SchedulerSpec
        from repro.harness.artifact import load_artifact, replay_artifact
        from repro.harness.campaign import run_campaign
        from repro.workloads.registry import ProgramSpec

        result = run_campaign(
            ProgramSpec("dekker"),
            SchedulerSpec("pctwm", {"depth": 2, "k_com": 12, "history": 2}),
            trials=40, base_seed=3, max_steps=5000,
            artifact_dir=str(tmp_path), sanitize="sampled", model="tso",
        )
        assert result.errors == 0
        assert result.inconsistent == 0
        assert result.hits > 0
        assert result.artifacts
        artifact = load_artifact(result.artifacts[0])
        assert artifact.model == "tso"
        report = replay_artifact(artifact)
        assert report.matched, report.mismatch

    def test_parallel_campaign_matches_serial_under_tso(self):
        from repro.core.factory import SchedulerSpec
        from repro.harness.campaign import run_campaign
        from repro.harness.parallel import run_campaign_parallel
        from repro.workloads.registry import ProgramSpec

        prog = ProgramSpec("dekker")
        sched = SchedulerSpec("pctwm",
                              {"depth": 2, "k_com": 12, "history": 2})
        serial = run_campaign(prog, sched, trials=24, base_seed=3,
                              max_steps=5000, model="tso")
        parallel = run_campaign_parallel(prog, sched, trials=24, base_seed=3,
                                         max_steps=5000, jobs=2, model="tso")
        assert parallel.hits == serial.hits
        assert parallel.errors == serial.errors == 0

    def test_checkpoint_rejects_model_mismatch(self, tmp_path):
        from repro.core.factory import SchedulerSpec
        from repro.harness.parallel import run_campaign_parallel
        from repro.workloads.registry import ProgramSpec

        prog = ProgramSpec("dekker")
        sched = SchedulerSpec("pctwm",
                              {"depth": 2, "k_com": 12, "history": 2})
        journal = str(tmp_path / "journal.jsonl")
        run_campaign_parallel(prog, sched, trials=8, base_seed=3,
                              max_steps=5000, jobs=2, checkpoint=journal,
                              model="tso")
        with pytest.raises(ValueError, match="does not match"):
            run_campaign_parallel(prog, sched, trials=8, base_seed=3,
                                  max_steps=5000, jobs=2, checkpoint=journal,
                                  resume=True, model="c11")
        resumed = run_campaign_parallel(prog, sched, trials=8, base_seed=3,
                                        max_steps=5000, jobs=2,
                                        checkpoint=journal, resume=True,
                                        model="tso")
        assert resumed.resumed_trials == 8

    def test_artifact_json_round_trips_model(self, tmp_path):
        from repro.harness.artifact import BugArtifact
        from repro.replay.trace import Trace

        artifact = BugArtifact(
            outcome="bug", program="SB", scheduler="pctwm",
            trial_index=0, trial_seed=1, base_seed=0, max_steps=100,
            spin_threshold=8, trace=Trace(decisions=[]), model="tso",
        )
        clone = BugArtifact.from_json(artifact.to_json())
        assert clone.model == "tso"
        assert clone.fingerprint == artifact.fingerprint

    def test_legacy_artifact_defaults_to_c11(self):
        import json

        from repro.harness.artifact import BugArtifact
        from repro.replay.trace import Trace

        artifact = BugArtifact(
            outcome="bug", program="SB", scheduler="pctwm",
            trial_index=0, trial_seed=1, base_seed=0, max_steps=100,
            spin_threshold=8, trace=Trace(decisions=[]),
        )
        raw = json.loads(artifact.to_json())
        del raw["model"]  # pre-model artifacts lack the field
        clone = BugArtifact.from_json(json.dumps(raw))
        assert clone.model == "c11"
