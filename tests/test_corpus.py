"""Replay the committed fuzz regression corpus (``tests/corpus/``).

Every entry pins a minimized generated program, its scheduler
configuration, its witness seed, and the expected
``(outcome, bug_kind, bug_message)``.  Each tier-1 run replays all of
them under both memory models; regenerate with
``scripts/regen_corpus.py`` when a change is *supposed* to alter
scheduling, generation, or shrinking behaviour.
"""

import os

import pytest

from repro.core.factory import SCHEDULER_REGISTRY
from repro.fuzz import CORPUS_VERSION, corpus_files, load_entry, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
PATHS = corpus_files(CORPUS_DIR)


def _ids(paths):
    return [os.path.splitext(os.path.basename(p))[0] for p in paths]


class TestCorpusShape:
    def test_floor_and_model_spread(self):
        entries = [load_entry(p) for p in PATHS]
        assert len(entries) >= 10, "corpus below the 10-entry floor"
        assert {e["model"] for e in entries} == {"c11", "tso"}

    @pytest.mark.parametrize("path", PATHS, ids=_ids(PATHS))
    def test_entry_is_well_formed(self, path):
        entry = load_entry(path)
        assert entry["version"] == CORPUS_VERSION
        assert os.path.basename(path) == entry["name"] + ".json"
        assert entry["program"]["kind"] == "fuzz"
        assert entry["scheduler"]["name"] in SCHEDULER_REGISTRY
        assert entry["expected"]["outcome"] in (
            "bug", "error", "timeout", "inconsistent")
        # Shrunk plans should be small; a fat entry means ddmin regressed.
        plan = entry["program"]["params"]["plan"]
        assert sum(len(body) for body in plan["threads"]) <= 8, entry["name"]


class TestCorpusReplay:
    @pytest.mark.parametrize("path", PATHS, ids=_ids(PATHS))
    def test_replays_to_pinned_outcome(self, path):
        replay = replay_entry(load_entry(path))
        assert replay.ok, replay.render()
