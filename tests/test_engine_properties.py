"""Property-based tests: random programs, every scheduler, C11 invariants.

Generates small random concurrent programs over two locations and checks
that every scheduler produces executions satisfying the consistency axioms
of Section 4, plus engine-level invariants (coherent per-thread reads,
atomic RMWs, deterministic replay by seed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
)
from repro.memory.axioms import check_consistency
from repro.memory.events import ACQ, ACQ_REL, REL, RLX, SC as SEQ
from repro.runtime import Program, fence, run_once

LOCS = ("X", "Y")
ORDERS = (RLX, ACQ, REL, ACQ_REL, SEQ)

# An op spec is a tuple interpreted by `interpret`.
op_spec = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(LOCS),
              st.integers(0, 3), st.sampled_from(ORDERS)),
    st.tuples(st.just("load"), st.sampled_from(LOCS),
              st.sampled_from(ORDERS)),
    st.tuples(st.just("faa"), st.sampled_from(LOCS),
              st.integers(1, 2), st.sampled_from((RLX, ACQ_REL, SEQ))),
    st.tuples(st.just("cas"), st.sampled_from(LOCS),
              st.integers(0, 2), st.integers(0, 3),
              st.sampled_from((RLX, ACQ_REL))),
    st.tuples(st.just("fence"), st.sampled_from((ACQ, REL, SEQ))),
)

thread_spec = st.lists(op_spec, min_size=1, max_size=6)
program_spec = st.lists(thread_spec, min_size=2, max_size=3)

SCHEDULER_FACTORIES = (
    lambda seed: NaiveRandomScheduler(seed=seed),
    lambda seed: C11TesterScheduler(seed=seed),
    lambda seed: PCTScheduler(2, 12, seed=seed),
    lambda seed: PCTWMScheduler(2, 8, 2, seed=seed),
)


def build_program(spec) -> Program:
    p = Program("random")
    handles = {loc: p.atomic(loc, 0) for loc in LOCS}

    def make_body(ops):
        def body():
            observed = []
            for op in ops:
                kind = op[0]
                if kind == "store":
                    _, loc, value, order = op
                    yield handles[loc].store(value, order)
                elif kind == "load":
                    _, loc, order = op
                    observed.append((loc, (yield handles[loc].load(order))))
                elif kind == "faa":
                    _, loc, delta, order = op
                    observed.append(
                        (loc, (yield handles[loc].fetch_add(delta, order)))
                    )
                elif kind == "cas":
                    _, loc, expected, desired, order = op
                    _ok, old = yield handles[loc].cas(expected, desired,
                                                      order)
                    observed.append((loc, old))
                else:
                    yield fence(op[1])
            return observed

        return body

    for ops in spec:
        p.add_thread(make_body(ops))
    return p


@settings(max_examples=40, deadline=None)
@given(program_spec, st.integers(0, 3), st.integers(0, 1000))
def test_every_execution_is_consistent(spec, scheduler_index, seed):
    scheduler = SCHEDULER_FACTORIES[scheduler_index](seed)
    result = run_once(build_program(spec), scheduler, max_steps=2000)
    assert not result.limit_exceeded
    violations = check_consistency(result.graph)
    assert not violations, violations


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 3), st.integers(0, 1000))
def test_per_thread_reads_are_mo_monotone(spec, scheduler_index, seed):
    """sc-per-location: a thread's same-location reads never go backwards."""
    scheduler = SCHEDULER_FACTORIES[scheduler_index](seed)
    result = run_once(build_program(spec), scheduler, max_steps=2000)
    last_seen = {}
    for event in result.graph.events:
        if event.reads_from is None:
            continue
        key = (event.tid, event.loc)
        mo_index = event.reads_from.mo_index
        if key in last_seen:
            assert mo_index >= last_seen[key]
        last_seen[key] = mo_index


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 3), st.integers(0, 1000))
def test_rmw_atomicity_operational(spec, scheduler_index, seed):
    """Every RMW reads the write immediately mo-before it."""
    scheduler = SCHEDULER_FACTORIES[scheduler_index](seed)
    result = run_once(build_program(spec), scheduler, max_steps=2000)
    for event in result.graph.events:
        if event.is_rmw:
            assert event.reads_from.mo_index == event.mo_index - 1


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 3), st.integers(0, 1000))
def test_atomic_programs_never_race(spec, scheduler_index, seed):
    scheduler = SCHEDULER_FACTORIES[scheduler_index](seed)
    result = run_once(build_program(spec), scheduler, max_steps=2000)
    assert not result.races


@settings(max_examples=20, deadline=None)
@given(program_spec, st.integers(0, 3), st.integers(0, 1000))
def test_replay_determinism(spec, scheduler_index, seed):
    """Same program + same scheduler seed => identical event streams."""
    make = SCHEDULER_FACTORIES[scheduler_index]
    a = run_once(build_program(spec), make(seed), max_steps=2000)
    b = run_once(build_program(spec), make(seed), max_steps=2000)
    trace_a = [(e.tid, e.label) for e in a.graph.events]
    trace_b = [(e.tid, e.label) for e in b.graph.events]
    assert trace_a == trace_b


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 1000))
def test_naive_scheduler_reads_are_sc(spec, seed):
    """Naive reads always observe the mo-maximal visible write, so every
    plain load's source has no mo-later write that existed at read time
    and was visible."""
    result = run_once(build_program(spec), NaiveRandomScheduler(seed=seed),
                      max_steps=2000)
    for event in result.graph.events:
        if event.reads_from is None or event.is_rmw:
            continue
        source = event.reads_from
        newer_existing = [
            w for w in result.graph.writes_by_loc[event.loc]
            if w.mo_index > source.mo_index and w.uid < event.uid
        ]
        # Anything newer must have been coherence-hidden... which cannot
        # happen for the mo-maximal choice: there must be none at all.
        assert not newer_existing
