"""Differential suite: the fast engine vs the reference engine.

The fast engine (``engine="fast"``) answers every visibility, hb and
release-chain query through incremental caches — per-location mo tail
arrays, per-thread vector clocks, release-chain stamps, memoized
coherence floors, PCTWM's array-backed views and sink-candidate memos.
The reference engine (``engine="reference"``) recomputes the same
queries from first principles on every read.

Both engines must consume the scheduler's RNG in the identical order
and make the identical choices, so for any (program, scheduler, seed)
the two runs must be *trace-for-trace equal*: same event sequence, same
labels, same rf/mo/SC relations, same final values, same bug verdicts.
This file enforces that over the full litmus gallery and every registry
workload, under all five scheduler families, across a fixed seed grid
(well over the 200-seed floor the roadmap demands).
"""

from __future__ import annotations

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
)
from repro.litmus import ALL_LITMUS
from repro.runtime import run_once
from repro.workloads.registry import BENCHMARKS

SCHEDULERS = {
    "naive": lambda seed: NaiveRandomScheduler(seed=seed),
    "c11tester": lambda seed: C11TesterScheduler(seed=seed),
    "pct": lambda seed: PCTScheduler(2, 24, seed=seed),
    "pctwm": lambda seed: PCTWMScheduler(2, 16, 2, seed=seed),
    "pos": lambda seed: POSScheduler(seed=seed),
}

LITMUS_SEEDS = range(8)
WORKLOAD_SEEDS = range(3)


def trace_fingerprint(result):
    """Everything observable about a run, in a comparable form.

    Event identity is positional (uid equals execution order), so rf and
    the per-location mo arrays compare by uid.  Labels compare by value.
    """
    graph = result.graph
    events = [
        (e.uid, e.tid, e.label.kind, e.label.order, e.label.loc,
         e.label.rval, e.label.wval, e.po_index, e.mo_index, e.sc_index,
         e.reads_from.uid if e.reads_from is not None else None)
        for e in graph.events
    ]
    mo = {
        loc: [w.uid for w in writes]
        for loc, writes in graph.writes_by_loc.items()
    }
    sc = [e.uid for e in graph.sc_order]
    return {
        "events": events,
        "mo": mo,
        "sc": sc,
        "bug_found": result.bug_found,
        "bug_kind": result.bug_kind,
        "limit_exceeded": result.limit_exceeded,
        "steps": result.steps,
        "k": result.k,
        "k_com": result.k_com,
        "races": [(r.first.uid, r.second.uid) for r in result.races],
        "thread_results": result.thread_results,
        "inconsistent": result.inconsistent,
    }


def assert_equivalent(factory, make_sched, seed, max_steps):
    fast = run_once(factory(), make_sched(seed), max_steps=max_steps,
                    engine="fast")
    ref = run_once(factory(), make_sched(seed), max_steps=max_steps,
                   engine="reference")
    assert fast.engine == "fast" and ref.engine == "reference"
    fp_fast = trace_fingerprint(fast)
    fp_ref = trace_fingerprint(ref)
    for key in fp_ref:
        assert fp_fast[key] == fp_ref[key], (
            f"engines diverge on {key!r} (seed={seed}): "
            f"fast={fp_fast[key]!r} reference={fp_ref[key]!r}"
        )
    # The fast graph's release-chain stamps must agree with the O(po)
    # reference scan on the graph itself.
    graph = fast.graph
    for event in graph.events:
        if event.is_write:
            assert graph.release_source(event) \
                is graph.release_source_reference(event), (
                f"release-chain stamp diverges on {event!r} (seed={seed})"
            )


@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("litmus_name", sorted(ALL_LITMUS))
def test_litmus_gallery_trace_equal(litmus_name, sched_name):
    factory = ALL_LITMUS[litmus_name]
    make_sched = SCHEDULERS[sched_name]
    for seed in LITMUS_SEEDS:
        assert_equivalent(factory, make_sched, seed, max_steps=2000)


@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
def test_registry_workloads_trace_equal(bench_name, sched_name):
    info = BENCHMARKS[bench_name]
    make_sched = SCHEDULERS[sched_name]
    for seed in WORKLOAD_SEEDS:
        assert_equivalent(info.build, make_sched, seed, max_steps=6000)


def test_seed_grid_meets_floor():
    """The grids above cover >= 200 (program, scheduler, seed) triples."""
    litmus = len(ALL_LITMUS) * len(SCHEDULERS) * len(LITMUS_SEEDS)
    workloads = len(BENCHMARKS) * len(SCHEDULERS) * len(WORKLOAD_SEEDS)
    assert litmus + workloads >= 200


def test_sanitizer_accepts_fast_runs():
    """--sanitize audits fast-path graphs with the reference axioms."""
    for seed in range(6):
        result = run_once(ALL_LITMUS["IRIW"](),
                          PCTWMScheduler(2, 8, 2, seed=seed),
                          max_steps=2000, sanitize=True, engine="fast")
        assert not result.violations, result.violations
