"""Tests for configuration minimization and execution diffing."""

import pytest

from repro import PCTWMScheduler, run_once
from repro.analysis import diff_executions
from repro.litmus import mp1, mp2, p1, store_buffering
from repro.memory.events import RLX
from repro.replay import minimize_configuration
from repro.workloads import BENCHMARKS


class TestMinimizeConfiguration:
    def test_finds_mp2_true_depth(self):
        cfg = minimize_configuration(mp2, depth=4, history=4, k_com=3,
                                     trials=200)
        assert cfg is not None
        assert cfg.depth == 2       # Definition 4's value for MP2
        assert cfg.history == 1
        assert cfg.hit_rate > 0

    def test_finds_sb_depth_zero(self):
        cfg = minimize_configuration(store_buffering, depth=3, history=3,
                                     k_com=4, trials=60)
        assert cfg is not None
        assert cfg.depth == 0
        assert cfg.hit_rate == 1.0  # the d=0 execution always hits

    def test_history_shrinks_independently(self):
        """P1 at h>=1 d=1 reproduces down to h=1 (the mo-max value)."""
        cfg = minimize_configuration(lambda: p1(5, order=RLX),
                                     depth=3, history=4, k_com=1,
                                     trials=60)
        assert cfg is not None
        assert (cfg.depth, cfg.history) == (1, 1)

    def test_bug_free_program_returns_none(self):
        assert minimize_configuration(mp1, depth=2, history=2,
                                      trials=40) is None

    def test_witness_seed_reproduces(self):
        cfg = minimize_configuration(BENCHMARKS["barrier"].build,
                                     depth=2, history=2, trials=80)
        assert cfg is not None
        result = run_once(
            BENCHMARKS["barrier"].build(),
            PCTWMScheduler(cfg.depth, cfg.k_com, cfg.history,
                           seed=cfg.witness_seed),
        )
        assert result.bug_found

    def test_validation(self):
        with pytest.raises(ValueError):
            minimize_configuration(mp2, depth=-1)
        with pytest.raises(ValueError):
            minimize_configuration(mp2, history=0)


class TestDiffExecutions:
    def test_identical_runs(self):
        a = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=5))
        b = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=5))
        diff = diff_executions(a.graph, b.graph)
        assert diff.identical
        assert "identical" in diff.render()

    def test_detects_schedule_divergence(self):
        a = run_once(store_buffering(), PCTWMScheduler(0, 4, 1, seed=0))
        b = None
        for seed in range(1, 30):
            candidate = run_once(store_buffering(),
                                 PCTWMScheduler(0, 4, 1, seed=seed))
            first_a = next(e for e in a.graph.events if not e.is_init)
            first_b = next(
                e for e in candidate.graph.events if not e.is_init
            )
            if first_a.tid != first_b.tid:
                b = candidate
                break
        assert b is not None
        diff = diff_executions(a.graph, b.graph)
        assert diff.first_divergence == 0
        assert "A ran" in diff.divergence

    def test_detects_rf_divergence(self):
        """Same schedule, different rf: only rf_differences populated."""
        from tests.helpers import ScriptedScheduler
        from repro.litmus import p1

        # Writer fully, then the reader: identical schedules, but run A's
        # read takes the latest write while run B's takes one older.
        schedule = [0, 0, 0, 1]
        a = run_once(p1(3, order=RLX),
                     ScriptedScheduler(list(schedule), read_picks=[0]))
        b = run_once(p1(3, order=RLX),
                     ScriptedScheduler(list(schedule), read_picks=[1]))
        diff = diff_executions(a.graph, b.graph)
        assert diff.rf_differences
        assert "rf differs" in diff.render()

    def test_length_mismatch_reported(self):
        long_run = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=6))
        short_run = run_once(mp2(), PCTWMScheduler(0, 3, 1, seed=0))
        diff = diff_executions(long_run.graph, short_run.graph)
        assert not diff.identical
