"""Tests for the ablation schedulers: each removed design choice must
visibly change behaviour in the direction DESIGN.md predicts."""

from repro.core import (
    PCTWMEagerViews,
    PCTWMFullBagJoin,
    PCTWMNoDelay,
    PCTWMScheduler,
    PCTWMUnboundedHistory,
)
from repro.litmus import mp2, p1, store_buffering
from repro.memory.events import RLX
from tests.helpers import hit_count


class TestEagerViews:
    """Without stale local views, pure-staleness bugs vanish."""

    def test_sb_never_hits(self):
        assert hit_count(store_buffering,
                         lambda s: PCTWMEagerViews(0, 4, 1, seed=s),
                         100) == 0

    def test_baseline_always_hits(self):
        assert hit_count(store_buffering,
                         lambda s: PCTWMScheduler(0, 4, 1, seed=s),
                         100) == 100


class TestFullBagJoin:
    """Over-propagation delivers too much: MP2's torn view disappears."""

    def test_mp2_never_hits(self):
        assert hit_count(mp2,
                         lambda s: PCTWMFullBagJoin(2, 3, 1, seed=s),
                         400) == 0

    def test_baseline_hits(self):
        assert hit_count(mp2,
                         lambda s: PCTWMScheduler(2, 3, 1, seed=s),
                         400) > 0


class TestNoDelay:
    """Without late-as-possible sinks, the sink often runs before the
    write it needs to observe exists — P1's hit rate collapses."""

    def test_p1_rate_collapses(self):
        trials = 300
        baseline = hit_count(
            lambda: p1(k=5, order=RLX),
            lambda s: PCTWMScheduler(1, 1, 1, seed=s), trials)
        ablated = hit_count(
            lambda: p1(k=5, order=RLX),
            lambda s: PCTWMNoDelay(1, 1, 1, seed=s), trials)
        assert baseline == trials
        assert ablated < baseline

    def test_still_finds_d0_bugs(self):
        """Delaying is irrelevant at d = 0; the ablation is unchanged."""
        assert hit_count(store_buffering,
                         lambda s: PCTWMNoDelay(0, 4, 1, seed=s),
                         50) == 50


class TestUnboundedHistory:
    """h = ∞ dilutes the sink's read over every visible write."""

    def test_p1_rate_drops_with_more_writes(self):
        trials = 300
        bounded = hit_count(
            lambda: p1(k=8, order=RLX),
            lambda s: PCTWMScheduler(1, 1, 1, seed=s), trials)
        unbounded = hit_count(
            lambda: p1(k=8, order=RLX),
            lambda s: PCTWMUnboundedHistory(1, 1, seed=s), trials)
        assert bounded == trials
        # The unbounded read picks uniformly among 9 visible writes.
        assert unbounded < trials // 2

    def test_names_distinct_for_reporting(self):
        names = {
            PCTWMScheduler(1, 2).name,
            PCTWMNoDelay(1, 2).name,
            PCTWMFullBagJoin(1, 2).name,
            PCTWMEagerViews(1, 2).name,
            PCTWMUnboundedHistory(1, 2).name,
        }
        assert len(names) == 5
