"""Tests for the PCT baseline scheduler (weak-memory variant)."""

import pytest

from repro.core import PCTScheduler
from repro.litmus import mp2, p1, store_buffering
from repro.memory.events import RLX, SC as SEQ
from repro.runtime import run_once
from tests.helpers import hit_count


class TestParameters:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PCTScheduler(depth=-1, k_events=5)
        with pytest.raises(ValueError):
            PCTScheduler(depth=1, k_events=0)

    def test_change_point_count_is_d_minus_1(self):
        sched = PCTScheduler(depth=4, k_events=20, seed=3)
        run_once(store_buffering(), sched)
        # Points are consumed as they fire; count the slot table instead.
        assert len(sched._slots) == 3

    def test_depth_one_has_no_change_points(self):
        sched = PCTScheduler(depth=1, k_events=20, seed=3)
        run_once(store_buffering(), sched)
        assert len(sched._slots) == 0

    def test_depth_zero_accepted(self):
        sched = PCTScheduler(depth=0, k_events=20, seed=3)
        result = run_once(store_buffering(), sched)
        assert result.steps > 0


class TestWeakMemoryVariant:
    """Section 6: 'our implementation of PCT ... reads any of the
    observable values under the given memory model'."""

    def test_pct_finds_weak_sb_outcome(self):
        hits = hit_count(store_buffering,
                         lambda s: PCTScheduler(1, 5, seed=s), 300)
        assert hits > 0

    def test_pct_respects_sc_accesses(self):
        hits = hit_count(lambda: store_buffering(order=SEQ),
                         lambda s: PCTScheduler(2, 5, seed=s), 200)
        assert hits == 0

    def test_pct_finds_p1_with_probability_about_uniform(self):
        """P1 with k=4 writes: the read picks uniformly among 5 visible
        values when scheduled last; overall rate is well above naive."""
        hits = hit_count(lambda: p1(k=4, order=RLX),
                         lambda s: PCTScheduler(1, 9, seed=s), 400)
        assert hits > 40  # far above the 1/2^k naive rate

    def test_pct_finds_mp2(self):
        hits = hit_count(mp2, lambda s: PCTScheduler(2, 5, seed=s), 400)
        assert hits > 0


class TestPriorities:
    def test_runs_to_completion_with_depth_exceeding_events(self):
        result = run_once(store_buffering(),
                          PCTScheduler(depth=10, k_events=3, seed=1))
        assert result.steps > 0
        assert len(result.thread_results) == 2

    def test_reproducible_with_seed(self):
        a = run_once(mp2(), PCTScheduler(2, 5, seed=11))
        b = run_once(mp2(), PCTScheduler(2, 5, seed=11))
        assert a.bug_found == b.bug_found
        assert a.thread_results == b.thread_results
