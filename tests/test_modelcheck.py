"""Tests for the exhaustive explorer (ground truth for tiny programs)."""

import pytest

from repro.core import C11TesterScheduler
from repro.harness.coverage import execution_signature
from repro.litmus import (
    corr,
    load_buffering,
    mp1,
    mp2,
    store_buffering,
)
from repro.memory.events import RLX
from repro.modelcheck import explore
from repro.runtime import Program, run_once


class TestExhaustiveGroundTruth:
    def test_sb_execution_space(self):
        """SB: each read independently sees init or the other write —
        exactly 4 distinct rf behaviours; the all-zero one is the bug."""
        report = explore(store_buffering)
        assert not report.truncated
        assert len(report.signatures) == 4
        assert report.bug_reachable
        assert len(report.buggy_signatures) == 1

    def test_mp1_is_safe_everywhere(self):
        """Exhaustive proof (relative to the engine): MP1's fences
        protect the data on every reachable execution."""
        report = explore(mp1)
        assert not report.truncated
        assert report.buggy == 0

    def test_mp2_bug_is_reachable_but_rare(self):
        report = explore(mp2)
        assert not report.truncated
        assert report.buggy >= 1
        assert report.bug_fraction < 0.5
        assert report.witness is not None
        assert report.witness.bug_found

    def test_coherence_shapes_have_no_bugs(self):
        for factory in (corr, load_buffering):
            report = explore(factory)
            assert not report.truncated
            assert report.buggy == 0

    def test_budget_truncation(self):
        report = explore(mp2, max_executions=3)
        assert report.truncated
        assert report.executions == 3


class TestExplorerCoversRandomSampling:
    """Everything a random campaign observes must be in the exhaustive
    set — the explorer enumerates a superset of sampled behaviours."""

    def test_c11tester_samples_subset_of_exhaustive(self):
        exhaustive = explore(store_buffering).signatures
        for seed in range(100):
            result = run_once(store_buffering(),
                              C11TesterScheduler(seed=seed))
            assert execution_signature(result.graph) in exhaustive

    def test_single_thread_single_execution(self):
        p = Program("solo")
        x = p.atomic("X", 0)

        def t():
            yield x.store(1, RLX)
            return (yield x.load(RLX))

        p.add_thread(t)
        report = explore(lambda: p)
        assert report.executions == 1
        assert len(report.signatures) == 1


class TestExplorerAgainstCampaignRates:
    def test_sb_bug_fraction_matches_uniform_read_sampling(self):
        """C11Tester flips two independent fair coins on SB, so its hit
        rate is ~25% — and the exhaustive bug *behaviour* count is 1 of 4."""
        report = explore(store_buffering)
        assert len(report.buggy_signatures) / len(report.signatures) \
            == pytest.approx(0.25)
