"""Service-layer chaos: concurrent jobs, fairness, and injected faults.

The campaign daemon's headline claims — live workers never exceed the
budget, a starved tenant's job starts within one shard boundary, and
results stay bit-identical through torn journal writes, ENOSPC on a
persist, worker SIGKILL, and a daemon restart mid-job — are exercised
here end to end against a real HTTP daemon.

These tests run real multi-process campaigns, so they are the slowest
in the service suite; the fast policy-level fairness tests live in
``test_service_admission.py``.
"""

import json
import os
import threading
import time

import pytest

from repro.harness import faultrig
from repro.harness.campaign import TrialRecord
from repro.harness.checkpoint import TrialJournal, load_journal
from repro.service import (
    CampaignDaemon,
    JobSpec,
    ServiceClient,
    result_summary,
    run_job,
)
from repro.service.api import make_server

BIT_FIELDS = ("hits", "inconclusive", "total_steps", "total_events")


def bit_key(summary):
    return tuple(summary[field] for field in BIT_FIELDS)


def spec_dict(**overrides):
    spec = {"benchmark": "dekker", "scheduler": "naive", "trials": 16,
            "seed": 3, "jobs": 1}
    spec.update(overrides)
    return spec


def write_tenants(tmp_path):
    path = str(tmp_path / "tenants.json")
    with open(path, "w") as fh:
        json.dump({"tenants": [
            {"id": "alice", "token": "alice-token", "rate_per_s": 1000.0,
             "burst": 1000},
            {"id": "bob", "token": "bob-token", "rate_per_s": 1000.0,
             "burst": 1000},
            {"id": "ops", "token": "ops-token", "rate_per_s": 1000.0,
             "burst": 1000, "operator": True},
        ]}, fh)
    return path


def serve(daemon):
    """Run ``serve_forever`` in a thread; discover the bound URL."""
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    endpoint = os.path.join(daemon.queue.state_dir, "endpoint.json")
    deadline = time.monotonic() + 30
    while not os.path.exists(endpoint):
        assert time.monotonic() < deadline, "endpoint file never appeared"
        time.sleep(0.02)
    return thread, json.load(open(endpoint))["url"]


def stop(daemon, thread):
    daemon.request_shutdown()
    thread.join(timeout=120)
    assert not thread.is_alive()


@pytest.fixture(autouse=True)
def _reset_faultrig():
    """Directives are a module global; never leak into the next test."""
    yield
    faultrig.load_directives("")


# -- journal tears -------------------------------------------------------------


class TestTornJournal:
    def test_torn_append_is_detected_and_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        faultrig.load_directives(f"torn-write-once:{tmp_path}/torn")
        meta = {"program": "p", "scheduler": "s", "base_seed": 0,
                "trials": 4, "max_steps": 100}
        records = [TrialRecord(index=i, bug_found=False,
                               limit_exceeded=False, steps=3, k=1,
                               elapsed_s=0.0)
                   for i in range(4)]
        with TrialJournal(path) as journal:
            journal.start(meta)
            journal.append(records[:2])  # halved on disk by the rig
            journal.append(records[2:])  # clean
        assert os.path.exists(f"{tmp_path}/torn")

        header, loaded = load_journal(path)
        assert header is not None  # the header line predates the tear
        # The clean append is fully recovered; at least one record from
        # the torn append is gone (cut mid-line or CRC-invalid), and
        # nothing bogus was resurrected from the torn bytes.
        assert {2, 3} <= set(loaded)
        assert len(loaded) < 4

    def test_resume_reruns_torn_trials_bit_identical(self, tmp_path):
        spec = spec_dict(trials=32, seed=9)
        reference = result_summary(run_job(JobSpec.from_dict(spec)))

        # First run journals every shard but the rig tears one append;
        # the in-memory result of *this* run is unaffected — the tear
        # matters to whoever resumes from the journal.
        faultrig.load_directives(f"torn-write-once:{tmp_path}/torn")
        checkpoint = str(tmp_path / "journal.jsonl")
        run_job(JobSpec.from_dict(spec), checkpoint=checkpoint)
        assert os.path.exists(f"{tmp_path}/torn")
        _, survived = load_journal(checkpoint)
        assert len(survived) < 32

        # A resume treats the torn trials as never-run and re-executes
        # them from their derived seeds: bit-identical fold.
        faultrig.load_directives("")
        resumed = run_job(JobSpec.from_dict(spec), checkpoint=checkpoint,
                          resume=True)
        summary = result_summary(resumed)
        assert summary["resumed_trials"] == len(survived)
        assert bit_key(summary) == bit_key(reference)


# -- single-fault HTTP behaviours ---------------------------------------------


def start_http(daemon):
    server = make_server(daemon, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1}, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, thread, url


class TestServiceFaults:
    def test_enospc_on_submit_persist_survives_client_retry(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(faultrig.FAULT_ENV,
                           f"enospc-once:{tmp_path}/enospc")
        daemon = CampaignDaemon(str(tmp_path / "state"), quiet=True,
                                rate_per_s=1000.0, burst=1000)
        server, thread, url = start_http(daemon)
        try:
            # First attempt 500s (persist raises ENOSPC before the job
            # is enqueued); the client's retry — same auto idempotency
            # key — lands cleanly and no duplicate is possible.
            client = ServiceClient(url, timeout_s=10.0, backoff_s=0.05)
            job = client.submit(spec_dict())
            assert job["status"] == "queued"
            assert os.path.exists(f"{tmp_path}/enospc")
            assert len(daemon.queue.list_jobs()) == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_slow_client_does_not_stall_other_requests(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(faultrig.FAULT_ENV,
                           f"slow-client-once:{tmp_path}/slow:1.0")
        daemon = CampaignDaemon(str(tmp_path / "state"), quiet=True,
                                rate_per_s=1000.0, burst=1000)
        server, thread, url = start_http(daemon)
        try:
            client = ServiceClient(url, timeout_s=10.0, retries=0)
            durations = []

            def probe():
                t0 = time.monotonic()
                client.health()
                durations.append(time.monotonic() - t0)

            probes = [threading.Thread(target=probe) for _ in range(2)]
            for p in probes:
                p.start()
            for p in probes:
                p.join(timeout=30)
            durations.sort()
            assert len(durations) == 2
            # One handler thread was pinned for a second; the threaded
            # server answered the other request immediately.
            assert durations[1] >= 1.0
            assert durations[0] < 0.9
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


# -- concurrency, fairness, budget --------------------------------------------


class TestConcurrentExecution:
    def test_concurrent_jobs_results_bit_identical(self, tmp_path):
        spec1 = spec_dict(trials=400, seed=7, jobs=2)
        spec2 = spec_dict(trials=400, seed=8, jobs=2)
        ref1 = result_summary(run_job(JobSpec.from_dict(spec1)))
        ref2 = result_summary(run_job(JobSpec.from_dict(spec2)))

        daemon = CampaignDaemon(str(tmp_path / "state"), port=0,
                                quiet=True, rate_per_s=1000.0, burst=1000,
                                worker_budget=4, max_concurrent_jobs=2)
        thread, url = serve(daemon)
        try:
            client = ServiceClient(url, timeout_s=10.0)
            job1 = client.submit(spec1)
            job2 = client.submit(spec2)
            final1 = client.wait(job1["id"], timeout_s=180, poll_s=0.1)
            final2 = client.wait(job2["id"], timeout_s=180, poll_s=0.1)
        finally:
            stop(daemon, thread)
        assert final1["status"] == "done"
        assert final2["status"] == "done"
        assert bit_key(final1["result"]) == bit_key(ref1)
        assert bit_key(final2["result"]) == bit_key(ref2)

    def test_starved_tenant_starts_and_budget_is_never_exceeded(
            self, tmp_path):
        tenants = write_tenants(tmp_path)
        daemon = CampaignDaemon(str(tmp_path / "state"), port=0,
                                quiet=True, rate_per_s=1000.0, burst=1000,
                                tenants_file=tenants,
                                worker_budget=2, max_concurrent_jobs=2)
        thread, url = serve(daemon)
        try:
            alice = ServiceClient(url, timeout_s=10.0, token="alice-token")
            bob = ServiceClient(url, timeout_s=10.0, token="bob-token")
            ops = ServiceClient(url, timeout_s=10.0, token="ops-token")

            # Alice saturates the whole two-worker budget...
            job_a = alice.submit(spec_dict(trials=30000, seed=5, jobs=2))
            deadline = time.monotonic() + 60
            while ops.health()["workers"]["granted"] < 2:
                assert time.monotonic() < deadline, \
                    "alice's job never took the full budget"
                time.sleep(0.05)

            # ...then Bob shows up and must be running soon: the
            # scheduler preempts Alice at the next shard boundary.
            job_b = bob.submit(spec_dict(trials=64, seed=6, jobs=1))
            saw_bob = False
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                health = ops.health()
                workers = health["workers"]
                # The chaos invariant, polled live the whole time.
                assert workers["live"] <= workers["budget"]
                assert workers["granted"] <= workers["budget"]
                if health["tenants"].get("bob", {}).get("running"):
                    saw_bob = True
                    break
                if ops.status(job_b["id"])["status"] == "done":
                    saw_bob = True
                    break
                time.sleep(0.05)
            assert saw_bob, "bob's job never got workers"
            assert ops.status(job_a["id"])["preemptions"] >= 1
        finally:
            stop(daemon, thread)


# -- the full chaos run --------------------------------------------------------


class TestChaosEndToEnd:
    def test_two_tenant_faulted_restart_bit_identical(
            self, tmp_path, monkeypatch):
        spec_a = spec_dict(trials=3000, seed=11, jobs=2)
        spec_b = spec_dict(trials=1000, seed=22, jobs=2)
        # References computed before any fault directive exists.
        ref_a = result_summary(run_job(JobSpec.from_dict(spec_a)))
        ref_b = result_summary(run_job(JobSpec.from_dict(spec_b)))

        sentinels = tmp_path / "sentinels"
        sentinels.mkdir()
        monkeypatch.setenv(faultrig.FAULT_ENV, ",".join([
            f"torn-write-once:{sentinels}/torn",
            f"enospc-once:{sentinels}/enospc",
            f"kill-once:{sentinels}/kill",
        ]))
        tenants = write_tenants(tmp_path)
        state = str(tmp_path / "state")
        audit_path = str(tmp_path / "audit.jsonl")

        def make_daemon():
            # spawn, not forkserver: the forkserver process was started
            # by an earlier campaign in this pytest run and keeps its
            # stale environment, so workers forked from it would never
            # see the fault directives.  spawn re-reads os.environ for
            # every worker, so kill-once reliably reaches the pool.
            return CampaignDaemon(state, port=0, quiet=True,
                                  rate_per_s=1000.0, burst=1000,
                                  start_method="spawn",
                                  tenants_file=tenants,
                                  audit_log_path=audit_path,
                                  worker_budget=2, max_concurrent_jobs=2)

        daemon1 = make_daemon()
        thread1, url = serve(daemon1)
        alice = ServiceClient(url, timeout_s=10.0, token="alice-token",
                              backoff_s=0.05)
        bob = ServiceClient(url, timeout_s=10.0, token="bob-token",
                            backoff_s=0.05)
        ops = ServiceClient(url, timeout_s=10.0, token="ops-token")
        try:
            # The first persist hits injected ENOSPC: submit 500s once
            # and the client retries through under its idempotency key.
            job_a = alice.submit(spec_a)
            job_b = bob.submit(spec_b)
            assert os.path.exists(f"{sentinels}/enospc")
            assert len(ops.list_jobs()) == 2

            # Let real campaign work start, then pull the plug.
            deadline = time.monotonic() + 60
            while ops.health()["workers"]["live"] < 1:
                assert time.monotonic() < deadline, \
                    "no campaign workers ever came up"
                time.sleep(0.05)
        finally:
            stop(daemon1, thread1)

        # Interrupted jobs resume on the restarted daemon and finish.
        daemon2 = make_daemon()
        thread2, url2 = serve(daemon2)
        try:
            ops2 = ServiceClient(url2, timeout_s=10.0, token="ops-token")
            final_a = ops2.wait(job_a["id"], timeout_s=300, poll_s=0.2)
            final_b = ops2.wait(job_b["id"], timeout_s=300, poll_s=0.2)
        finally:
            stop(daemon2, thread2)

        assert final_a["status"] == "done"
        assert final_b["status"] == "done"
        assert bit_key(final_a["result"]) == bit_key(ref_a)
        assert bit_key(final_b["result"]) == bit_key(ref_b)
        # Every injected fault genuinely fired somewhere along the way.
        assert os.path.exists(f"{sentinels}/torn")
        assert os.path.exists(f"{sentinels}/kill")
        # And the audit trail recorded both tenants' submissions.
        entries = [json.loads(line) for line in open(audit_path)]
        submitters = {e["tenant"] for e in entries
                      if e["method"] == "POST" and e["path"] == "/jobs"
                      and e["status"] in (200, 201)}
        assert {"alice", "bob"} <= submitters
