"""Tests for the x86-TSO engine and its testing algorithms.

The key claims: TSO allows exactly the store→load reordering (SB weak
outcome reachable; MP, LB, IRIW, coherence shapes all forbidden), and the
PCTWM-style delayed-write scheduler gives the Section 5.4-style guarantee
instantiated for TSO: with both SB stores selected (d = 2 of k_writes = 2)
the weak outcome is hit on every run.
"""

import pytest

from repro.litmus import (
    corr,
    iriw,
    load_buffering,
    message_passing,
    mp2,
    p1,
    store_buffering,
)
from repro.memory.events import RLX
from repro.runtime import Program, require
from repro.tso import (
    TsoDelayedWriteScheduler,
    TsoEagerScheduler,
    TsoNaiveScheduler,
    TsoPCTScheduler,
    run_tso,
)


def rate(factory, make, trials=200):
    hits = sum(
        run_tso(factory(), make(seed), keep_graph=False).bug_found
        for seed in range(trials)
    )
    return hits


class TestTsoSemantics:
    def test_sb_weak_outcome_reachable(self):
        assert rate(store_buffering,
                    lambda s: TsoNaiveScheduler(seed=s)) > 0

    def test_eager_flushing_is_sequentially_consistent(self):
        assert rate(store_buffering,
                    lambda s: TsoEagerScheduler(seed=s)) == 0

    @pytest.mark.parametrize("factory", [
        message_passing, load_buffering, iriw, corr, mp2,
    ])
    def test_non_tso_shapes_forbidden(self, factory):
        """TSO preserves W->W, R->R and is multi-copy atomic: only the
        SB shape is weak.  (MP2's bug needs R->R/W->W reordering.)"""
        assert rate(factory, lambda s: TsoNaiveScheduler(seed=s)) == 0
        assert rate(factory,
                    lambda s: TsoDelayedWriteScheduler(2, 4, seed=s)) == 0

    def test_store_forwarding(self):
        """A thread always sees its own buffered store."""
        p = Program("forwarding")
        x = p.atomic("X", 0)

        def t():
            yield x.store(7, RLX)
            value = yield x.load(RLX)
            require(value == 7, f"lost own buffered store: {value}")
            return value

        p.add_thread(t)

        def other():
            yield x.load(RLX)

        p.add_thread(other)
        for seed in range(50):
            result = run_tso(p, TsoNaiveScheduler(seed=seed))
            assert not result.bug_found

    def test_fence_drains_buffer(self):
        """SB with fences between store and load is safe on TSO."""
        from repro.runtime import fence
        from repro.memory.events import SC as SEQ

        def fenced_sb():
            p = Program("SB+mfence")
            x = p.atomic("X", 0)
            y = p.atomic("Y", 0)

            def left():
                yield x.store(1, RLX)
                yield fence(SEQ)
                return (yield y.load(RLX))

            def right():
                yield y.store(1, RLX)
                yield fence(SEQ)
                return (yield x.load(RLX))

            p.add_thread(left)
            p.add_thread(right)
            p.add_final_check(
                lambda r: require(r["left"] == 1 or r["right"] == 1,
                                  "fenced SB must not both read 0")
            )
            return p

        assert rate(fenced_sb, lambda s: TsoNaiveScheduler(seed=s),
                    300) == 0
        assert rate(fenced_sb,
                    lambda s: TsoDelayedWriteScheduler(2, 2, seed=s),
                    300) == 0

    def test_rmw_drains_and_is_atomic(self):
        p = Program("tso-rmw")
        x = p.atomic("X", 0)

        def t():
            yield x.fetch_add(1, RLX)

        p.add_thread(t, name="a")
        p.add_thread(t, name="b")
        for seed in range(40):
            result = run_tso(p, TsoNaiveScheduler(seed=seed))
            final = result.graph.mo_max("X").label.wval
            assert final == 2

    def test_run_completes_with_drained_buffers(self):
        result = run_tso(store_buffering(), TsoNaiveScheduler(seed=1))
        assert result.steps > 0
        # All writes committed: every store has an mo position.
        for event in result.graph.events:
            if event.is_write and not event.is_init:
                assert event.mo_index >= 0


class TestDelayedWriteGuarantee:
    """The Section 5.4 analogue for TSO."""

    def test_sb_deterministic_at_full_depth(self):
        """k_writes = 2, d = 2: both stores always selected, both delayed
        past both loads — the weak outcome on every single run."""
        assert rate(store_buffering,
                    lambda s: TsoDelayedWriteScheduler(2, 2, seed=s),
                    100) == 100

    def test_sb_half_at_depth_one(self):
        """d = 1 of k_writes = 2: the bug needs the *first-running*
        thread's store delayed — about half the configurations."""
        hits = rate(store_buffering,
                    lambda s: TsoDelayedWriteScheduler(1, 2, seed=s), 400)
        assert 120 <= hits <= 280

    def test_sb_zero_at_depth_zero(self):
        assert rate(store_buffering,
                    lambda s: TsoDelayedWriteScheduler(0, 2, seed=s),
                    100) == 0

    def test_classic_pct_misses_tso_bugs(self):
        """PCT schedules SC-like executions: it cannot reach the SB weak
        outcome no matter the depth — the paper's Section 3 point, shown
        on a second memory model."""
        for depth in (1, 2, 3):
            assert rate(store_buffering,
                        lambda s: TsoPCTScheduler(depth, 6, seed=s),
                        150) == 0

    def test_p1_under_tso_needs_sc_scheduling(self):
        """P1's bug is an interleaving bug: reachable on TSO by the
        delayed-write scheduler only via schedule order (reads see
        committed mo-max), and by PCT via its priorities."""
        hits = rate(lambda: p1(3, order=RLX),
                    lambda s: TsoPCTScheduler(1, 8, seed=s), 300)
        assert hits > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TsoDelayedWriteScheduler(-1, 2)
        with pytest.raises(ValueError):
            TsoDelayedWriteScheduler(1, 0)
        with pytest.raises(ValueError):
            TsoPCTScheduler(-1, 5)
