"""CLI coverage for the remaining subcommands."""

from repro.harness.cli import main


class TestCliCommands:
    def test_table3_command(self, capsys):
        assert main(["table3", "--trials", "4",
                     "--benchmarks", "dekker"]) == 0
        assert "h:1" in capsys.readouterr().out

    def test_table4_command(self, capsys):
        assert main(["table4", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "silo" in out and "iris" in out

    def test_figure6_command(self, capsys):
        assert main(["figure6", "--trials", "4",
                     "--benchmarks", "dekker"]) == 0
        out = capsys.readouterr().out
        assert "inserting relaxed writes" in out
        assert "inserted writes" in out  # the ASCII chart

    def test_litmus_command(self, capsys):
        assert main(["litmus", "--trials", "10"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "pctwm" in out

    def test_all_command_small(self, capsys):
        assert main(["all", "--trials", "2", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        for artifact in ("Table 1", "Table 2", "Table 3", "Table 4",
                         "Figure 5", "Figure 6"):
            assert artifact in out

    def test_depth_command_reports_calibration(self, capsys):
        assert main(["depth", "dekker", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "calibrated" in out
