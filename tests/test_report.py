"""Tests for the markdown report generator."""

from repro.harness.report import generate_report, write_report


class TestReport:
    def test_generate_contains_every_artifact(self):
        text = generate_report(trials=4, runs=2)
        for heading in ("Table 1", "Table 2", "Table 3", "Table 4",
                        "Figure 5", "Figure 6"):
            assert heading in text
        assert "dekker" in text
        assert "| benchmark |" in text  # markdown tables

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        returned = write_report(str(path), trials=3, runs=2)
        assert returned == str(path)
        content = path.read_text()
        assert content.startswith("# PCTWM reproduction")
        assert content.endswith("\n")

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.harness.cli import main
        out = tmp_path / "r.md"
        assert main(["report", "--trials", "3", "--runs", "2",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out
