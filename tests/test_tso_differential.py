"""Differential TSO-vs-C11 testing on data-race-free programs.

On programs without weak-memory sensitivity, the two backends must
agree: every run, on either model, under any scheduler seed, ends in
the same final memory state.  Two program families pin this:

* *determinate* programs — disjoint-location writers and atomic RMW
  counters — whose final state is the same under every interleaving,
  so agreement is checked seed-for-seed against the one expected state;
* seq_cst litmus shapes — under all-SC accesses, TSO stores drain
  their buffer at issue (MOV+MFENCE) and the C11 axioms forbid non-SC
  outcomes, so the weak outcome must be unreachable on *both* backends
  and the final memory state must coincide.

A divergence here means one backend built a different execution graph
for a program whose semantics the models share — exactly the class of
bug the old TSO demo engine hid by discarding declared memory orders.
"""

from __future__ import annotations

import pytest

from repro.core import NaiveRandomScheduler, PCTWMScheduler
from repro.litmus.programs import message_passing, store_buffering
from repro.memory import resolve_model
from repro.memory.events import RLX, SC
from repro.runtime import Program

C11 = resolve_model("c11")
TSO = resolve_model("tso")

SEEDS = range(20)


def final_memory(result) -> dict:
    """Location -> mo-maximal value of a finished run's graph."""
    graph = result.graph
    return {loc: graph.mo_max(loc).wval for loc in graph.writes_by_loc}


def disjoint_writers(order) -> Program:
    """Three threads, each the sole writer of its own two locations."""
    p = Program("disjoint-writers")
    handles = {f"L{i}{j}": p.atomic(f"L{i}{j}", 0)
               for i in range(3) for j in range(2)}

    def make_body(i):
        def body():
            for j in range(2):
                for value in (1, 2, i + 10):
                    yield handles[f"L{i}{j}"].store(value, order)
        return body

    for i in range(3):
        p.add_thread(make_body(i))
    return p


def rmw_counter(order, threads: int = 3, increments: int = 5) -> Program:
    """Atomic fetch_add counter: final value is interleaving-invariant."""
    p = Program("rmw-counter")
    counter = p.atomic("C", 0)

    def body():
        for _ in range(increments):
            yield counter.fetch_add(1, order)

    for _ in range(threads):
        p.add_thread(body)
    return p


SCHEDULER_MAKERS = (
    lambda seed: NaiveRandomScheduler(seed=seed),
    lambda seed: PCTWMScheduler(2, 8, 2, seed=seed),
)


class TestDeterminatePrograms:
    @pytest.mark.parametrize("order", (RLX, SC), ids=("rlx", "sc"))
    def test_disjoint_writers_agree(self, order):
        expected = {f"L{i}{j}": i + 10 for i in range(3) for j in range(2)}
        for make in SCHEDULER_MAKERS:
            for seed in SEEDS:
                for model in (C11, TSO):
                    result = model.run_once(disjoint_writers(order),
                                            make(seed), max_steps=2000)
                    assert not result.limit_exceeded
                    assert final_memory(result) == expected, \
                        f"{model.name} diverged at seed {seed}"

    @pytest.mark.parametrize("order", (RLX, SC), ids=("rlx", "sc"))
    def test_rmw_counter_agrees(self, order):
        for make in SCHEDULER_MAKERS:
            for seed in SEEDS:
                for model in (C11, TSO):
                    result = model.run_once(rmw_counter(order),
                                            make(seed), max_steps=2000)
                    assert not result.limit_exceeded
                    assert final_memory(result)["C"] == 15, \
                        f"{model.name} lost an increment at seed {seed}"


class TestSeqCstLitmus:
    """All-SC litmus shapes are weak-outcome-free on both backends."""

    def test_sb_seq_cst_never_weak_and_states_agree(self):
        for seed in SEEDS:
            states = {}
            for model in (C11, TSO):
                result = model.run_once(store_buffering(order=SC),
                                        NaiveRandomScheduler(seed=seed),
                                        max_steps=2000)
                assert not result.bug_found, \
                    f"{model.name} exhibited the SB weak outcome under SC"
                states[model.name] = final_memory(result)
            assert states["c11"] == states["tso"] == {"X": 1, "Y": 1}

    def test_mp_seq_cst_never_weak_and_states_agree(self):
        for seed in SEEDS:
            states = {}
            for model in (C11, TSO):
                result = model.run_once(
                    message_passing(data_order=SC, flag_store_order=SC,
                                    flag_load_order=SC),
                    NaiveRandomScheduler(seed=seed), max_steps=2000)
                assert not result.bug_found, \
                    f"{model.name} exhibited the MP weak outcome under SC"
                states[model.name] = final_memory(result)
            assert states["c11"] == states["tso"]
