"""Fault tolerance: trial containment, timeouts, worker recovery, resume.

The contract under test: a campaign survives any single-trial fault (a
workload that raises, a scheduler that misbehaves, a trial that blows its
wall-clock budget), survives dying pool workers by retrying the lost
shards (bit-identical, because seeds are per-trial), and survives being
interrupted by journaling completed trials for an exact resume.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core import C11TesterScheduler, NaiveRandomScheduler, SchedulerSpec
from repro.harness import run_campaign, run_campaign_parallel, run_trial
from repro.harness.campaign import ERROR_SAMPLE_LIMIT, summarize_exception
from repro.harness.cli import main as cli_main
from repro.harness.parallel import _pool_context
from repro.litmus import store_buffering
from repro.memory.events import RLX
from repro.runtime.errors import ReproError
from repro.runtime.executor import run_once
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler
from repro.workloads import ProgramSpec


# -- module-level (picklable) fault fixtures ----------------------------------


def crashing_program():
    """Workload whose thread raises unconditionally mid-run."""
    p = Program("always-crash")
    x = p.atomic("X", 0)

    def worker():
        yield x.store(1, RLX)
        raise RuntimeError("workload exploded mid-run")

    p.add_thread(worker)
    return p


def sometimes_crashing_program():
    """SB variant that crashes only on schedules where right reads X=1.

    Other schedules either hit the SB assertion bug or pass, so one
    campaign exercises hit, miss, and error outcomes together.
    """
    p = Program("sometimes-crash")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def left():
        yield x.store(1, RLX)
        a = yield y.load(RLX)
        return a

    def right():
        yield y.store(1, RLX)
        b = yield x.load(RLX)
        if b == 1:
            raise RuntimeError("crashed after observing X=1")
        return b

    p.add_thread(left)
    p.add_thread(right)
    from repro.runtime.errors import require
    p.add_final_check(
        lambda r: require(r["left"] == 1 or r["right"] == 1,
                          "SB: both threads read 0"))
    return p


def long_running_program():
    """Thousands of steps: plenty of wall-clock to run out of."""
    p = Program("long-loop")
    x = p.atomic("X", 0)

    def worker():
        for i in range(4000):
            yield x.store(i, RLX)

    p.add_thread(worker)
    return p


class DisabledChoosingScheduler(Scheduler):
    """Always chooses a thread id that is not enabled (engine fault)."""

    name = "disabled-chooser"

    def choose_thread(self, state):
        return len(state.threads) + 7


def disabled_scheduler_factory(seed):
    return DisabledChoosingScheduler(seed=seed)


def naive_factory(seed):
    return NaiveRandomScheduler(seed=seed)


def c11_factory(seed):
    return C11TesterScheduler(seed=seed)


class SlowSchedulerFactory:
    """Scheduler factory whose construction costs measurable wall time."""

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def __call__(self, seed):
        time.sleep(self.delay_s)
        return NaiveRandomScheduler(seed=seed)


class KillOnceFactory:
    """Program factory that SIGKILLs the first worker process to call it.

    The sentinel file makes the kill happen exactly once (O_EXCL is
    atomic across concurrent workers), so the retried shard — and every
    later trial — builds the program normally.  The parent process is
    never killed: the factory only fires inside pool workers.
    """

    def __init__(self, sentinel: str):
        self.sentinel = sentinel

    def __call__(self):
        if multiprocessing.parent_process() is not None:
            try:
                fd = os.open(self.sentinel,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return store_buffering()


class InterruptAfterShards:
    """Progress hook that simulates an operator SIGINT after N shards."""

    def __init__(self, shards: int):
        self.shards = shards
        self.calls = 0

    def __call__(self, progress):
        self.calls += 1
        if self.calls >= self.shards:
            raise KeyboardInterrupt


# -- trial containment ---------------------------------------------------------


class TestTrialContainment:
    def test_crashing_workload_is_recorded_not_raised(self):
        record = run_trial(crashing_program, naive_factory, 0, 0)
        assert record.error is not None
        assert "RuntimeError" in record.error
        assert "workload exploded" in record.error
        assert not record.bug_found
        assert record.steps == 0

    def test_error_summary_names_the_site(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            summary = summarize_exception(exc)
        assert summary.startswith("ValueError: boom @ ")
        assert "test_fault_tolerance.py" in summary

    def test_campaign_over_crashing_workload_completes(self):
        result = run_campaign(crashing_program, naive_factory, trials=12,
                              scheduler_name="naive")
        assert result.completed == 12
        assert result.errors == 12
        assert result.hits == 0
        assert len(result.error_samples) == min(12, ERROR_SAMPLE_LIMIT)
        assert "trial 0:" in result.error_samples[0]

    def test_mixed_outcomes_all_non_crashing_trials_complete(self):
        """The acceptance shape: hits, misses and errors coexist."""
        result = run_campaign(sometimes_crashing_program, c11_factory,
                              trials=60, base_seed=3,
                              scheduler_name="c11tester")
        assert result.completed == 60
        assert result.errors > 0
        assert result.hits > 0
        assert result.errors + result.hits < 60  # some trials simply pass

    def test_parallel_containment_matches_serial(self):
        """Errors are contained inside workers and merge bit-identically."""
        serial = run_campaign(sometimes_crashing_program, c11_factory,
                              trials=40, base_seed=3,
                              scheduler_name="c11tester")
        parallel = run_campaign_parallel(
            sometimes_crashing_program, c11_factory, trials=40, base_seed=3,
            jobs=2, scheduler_name="c11tester")
        assert parallel.errors == serial.errors > 0
        assert (parallel.hits, parallel.inconclusive, parallel.total_steps,
                parallel.total_events) \
            == (serial.hits, serial.inconclusive, serial.total_steps,
                serial.total_events)

    def test_bad_scheduler_is_contained(self):
        result = run_campaign(store_buffering, disabled_scheduler_factory,
                              trials=5, scheduler_name="disabled-chooser")
        assert result.errors == 5
        assert "ReproError" in result.error_samples[0]
        assert "disabled" in result.error_samples[0]

    def test_bad_scheduler_still_raises_outside_campaigns(self):
        with pytest.raises(ReproError):
            run_once(store_buffering(), DisabledChoosingScheduler())

    def test_containment_is_deterministic(self):
        a = run_campaign(sometimes_crashing_program, c11_factory,
                         trials=40, base_seed=7, scheduler_name="c11tester")
        b = run_campaign(sometimes_crashing_program, c11_factory,
                         trials=40, base_seed=7, scheduler_name="c11tester")
        assert (a.hits, a.errors, a.total_steps) \
            == (b.hits, b.errors, b.total_steps)

    def test_error_samples_are_bounded(self):
        result = run_campaign(crashing_program, naive_factory,
                              trials=ERROR_SAMPLE_LIMIT + 5,
                              scheduler_name="naive")
        assert result.errors == ERROR_SAMPLE_LIMIT + 5
        assert len(result.error_samples) == ERROR_SAMPLE_LIMIT

    def test_timing_covers_scheduler_and_program_build(self):
        """Satellite: build costs on both sides count toward elapsed_s."""
        record = run_trial(store_buffering, SlowSchedulerFactory(0.05),
                           0, 0)
        assert record.error is None
        assert record.elapsed_s >= 0.04


# -- per-trial wall-clock timeout ----------------------------------------------


class TestTrialTimeout:
    def test_run_once_zero_budget_times_out_immediately(self):
        run = run_once(long_running_program(), NaiveRandomScheduler(seed=0),
                       wall_timeout_s=0.0)
        assert run.timed_out
        assert not run.bug_found
        assert not run.limit_exceeded
        assert run.steps == 0

    def test_generous_budget_does_not_trigger(self):
        run = run_once(store_buffering(), NaiveRandomScheduler(seed=0),
                       wall_timeout_s=60.0)
        assert not run.timed_out
        assert run.steps > 0

    def test_campaign_counts_timeouts(self):
        result = run_campaign(long_running_program, naive_factory, trials=4,
                              scheduler_name="naive", trial_timeout_s=0.0)
        assert result.timeouts == 4
        assert result.errors == 0
        assert result.completed == 4

    def test_timeout_threads_through_parallel_path(self):
        result = run_campaign_parallel(
            ProgramSpec("SB", kind="litmus"), SchedulerSpec("naive"),
            trials=8, jobs=2, trial_timeout_s=60.0)
        assert result.timeouts == 0
        assert result.completed == 8


# -- worker-crash recovery -----------------------------------------------------


class TestWorkerRecovery:
    def test_killed_worker_is_retried_bit_identical(self, tmp_path):
        """SIGKILL one pool worker mid-campaign; the supervisor must
        rebuild the pool, retry the lost shards, and still produce
        aggregates bit-identical to an uninterrupted serial run."""
        factory = KillOnceFactory(str(tmp_path / "killed-once"))
        sched = SchedulerSpec("naive")
        parallel = run_campaign_parallel(
            factory, sched, trials=24, base_seed=9, jobs=2,
            max_retries=3, retry_backoff_s=0.01)
        serial = run_campaign(store_buffering, sched, trials=24, base_seed=9)
        assert os.path.exists(str(tmp_path / "killed-once"))  # it fired
        assert parallel.completed == 24
        assert not parallel.interrupted
        assert parallel.errors == 0
        assert (parallel.hits, parallel.inconclusive, parallel.total_steps,
                parallel.total_events) \
            == (serial.hits, serial.inconclusive, serial.total_steps,
                serial.total_events)

    def test_pool_context_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert _pool_context().get_start_method() == "spawn"

    def test_pool_context_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork not available on this platform")
        assert _pool_context("fork").get_start_method() == "fork"

    def test_pool_context_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            _pool_context("not-a-method")

    def test_pool_context_default_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        methods = multiprocessing.get_all_start_methods()
        expected = "fork" if "fork" in methods else "spawn"
        assert _pool_context().get_start_method() == expected


# -- checkpoint / resume -------------------------------------------------------


class TestCheckpointResume:
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("pctwm", {"depth": 2, "k_com": 4})

        partial = run_campaign_parallel(
            program, sched, trials=48, base_seed=11, jobs=2,
            checkpoint=path, progress=InterruptAfterShards(2))
        assert partial.interrupted
        assert 0 < partial.completed < 48

        resumed = run_campaign_parallel(
            program, sched, trials=48, base_seed=11, jobs=2,
            checkpoint=path, resume=True)
        serial = run_campaign(program, sched, trials=48, base_seed=11)
        assert not resumed.interrupted
        assert resumed.resumed_trials == partial.completed
        assert resumed.completed == 48
        assert (resumed.hits, resumed.inconclusive, resumed.total_steps,
                resumed.total_events) \
            == (serial.hits, serial.inconclusive, serial.total_steps,
                serial.total_events)

    def test_journal_matches_folded_partial_aggregates(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("naive")
        partial = run_campaign_parallel(
            program, sched, trials=30, base_seed=2, jobs=2,
            checkpoint=path, progress=InterruptAfterShards(1))
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        trial_lines = [obj for obj in lines if obj.get("kind") == "trial"]
        assert len(trial_lines) == partial.completed
        assert sum(obj["bug_found"] for obj in trial_lines) == partial.hits

    def test_resume_on_complete_journal_runs_nothing(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("naive")
        first = run_campaign_parallel(program, sched, trials=10, base_seed=4,
                                      jobs=2, checkpoint=path)
        again = run_campaign_parallel(program, sched, trials=10, base_seed=4,
                                      jobs=2, checkpoint=path, resume=True)
        assert again.resumed_trials == 10
        assert again.shard_times_s == []  # nothing re-run
        assert again.hits == first.hits
        assert again.run_times_s == first.run_times_s  # exact float resume

    def test_serial_checkpoint_path_works(self, tmp_path):
        """jobs=1 with a checkpoint journals and resumes in-process."""
        path = str(tmp_path / "journal.jsonl")
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("naive")
        first = run_campaign_parallel(program, sched, trials=12, base_seed=6,
                                      jobs=1, checkpoint=path)
        assert first.completed == 12
        resumed = run_campaign_parallel(program, sched, trials=12,
                                        base_seed=6, jobs=1,
                                        checkpoint=path, resume=True)
        assert resumed.resumed_trials == 12
        assert resumed.hits == first.hits

    def test_resume_rejects_mismatched_campaign(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("naive")
        run_campaign_parallel(program, sched, trials=10, base_seed=4,
                              jobs=1, checkpoint=path)
        with pytest.raises(ValueError, match="does not match"):
            run_campaign_parallel(program, sched, trials=10, base_seed=5,
                                  jobs=1, checkpoint=path, resume=True)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="requires a checkpoint"):
            run_campaign_parallel(ProgramSpec("SB", kind="litmus"),
                                  SchedulerSpec("naive"), trials=5,
                                  resume=True)


# -- CLI wiring ----------------------------------------------------------------


class TestCliFaultFlags:
    def test_trials_zero_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["campaign", "dekker", "--trials", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["table2", "--jobs", "-3"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_seed_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "dekker", "--seed", "-1"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_non_numeric_trials_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "dekker", "--trials", "lots"])
        assert "expected an integer" in capsys.readouterr().err

    def test_campaign_checkpoint_and_resume_flags(self, tmp_path, capsys):
        path = str(tmp_path / "cli-journal.jsonl")
        rc = cli_main(["campaign", "dekker", "--trials", "6",
                       "--scheduler", "naive", "--checkpoint", path])
        assert rc == 0
        assert os.path.exists(path)
        first = capsys.readouterr().out
        assert "errors=0" in first
        rc = cli_main(["campaign", "dekker", "--trials", "6",
                       "--scheduler", "naive", "--checkpoint", path,
                       "--resume"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed 6 trials" in out

    def test_campaign_trial_timeout_flag(self, capsys):
        rc = cli_main(["campaign", "dekker", "--trials", "4",
                       "--scheduler", "naive",
                       "--trial-timeout", "60"])
        assert rc == 0
        assert "timeouts=0" in capsys.readouterr().out

    def test_campaign_resume_mismatch_is_clean_error(self, tmp_path,
                                                     capsys):
        path = str(tmp_path / "cli-journal.jsonl")
        assert cli_main(["campaign", "dekker", "--trials", "6",
                         "--scheduler", "naive",
                         "--checkpoint", path]) == 0
        capsys.readouterr()
        rc = cli_main(["campaign", "dekker", "--trials", "6",
                       "--scheduler", "naive", "--seed", "1",
                       "--checkpoint", path, "--resume"])
        assert rc == 2
        assert "does not match" in capsys.readouterr().out
