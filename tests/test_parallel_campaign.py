"""Tests for the parallel campaign engine and sharded seed derivation.

The contract under test: for a fixed base seed, ``run_campaign_parallel``
reports aggregate counts bit-identical to the serial ``run_campaign``,
for any worker count and chunking — because trial ``i`` always runs with
``derive_trial_seed(base_seed, i)`` and shards merge in trial order.
"""

import pickle

import pytest

from repro.core import SCHEDULER_REGISTRY, SchedulerSpec, make_scheduler
from repro.harness import (
    CampaignProgress,
    derive_trial_seed,
    run_campaign,
    run_campaign_parallel,
)
from repro.harness.cli import main as cli_main
from repro.harness.parallel import shard_bounds
from repro.workloads import ProgramSpec


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_trial_seed(7, 3) == derive_trial_seed(7, 3)

    def test_distinct_within_campaign(self):
        seeds = [derive_trial_seed(0, i) for i in range(2000)]
        assert len(set(seeds)) == 2000

    def test_nearby_base_seeds_do_not_overlap(self):
        """The old ``base_seed + i`` scheme made campaigns with nearby
        base seeds rerun each other's trial streams; splitmix must not."""
        a = {derive_trial_seed(0, i) for i in range(500)}
        b = {derive_trial_seed(1, i) for i in range(500)}
        assert not (a & b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_trial_seed(0, -1)

    def test_64_bit_range(self):
        seed = derive_trial_seed(123456789, 42)
        assert 0 <= seed < 2 ** 64


class TestSpecs:
    def test_scheduler_spec_builds_named_scheduler(self):
        spec = SchedulerSpec("pctwm", {"depth": 1, "k_com": 4})
        sched = spec(seed=3)
        assert sched.name == "pctwm"
        assert spec.scheduler_name == "pctwm"

    def test_scheduler_spec_rejects_unknown(self):
        with pytest.raises(ValueError):
            SchedulerSpec("not-a-scheduler")
        with pytest.raises(ValueError):
            make_scheduler("not-a-scheduler")

    def test_registry_keys_match_scheduler_names(self):
        for name, cls in SCHEDULER_REGISTRY.items():
            assert cls.name == name

    def test_program_spec_builds_benchmarks_litmus_and_apps(self):
        assert ProgramSpec("dekker").build().name == "dekker"
        assert ProgramSpec("SB", kind="litmus").build() is not None
        silo = ProgramSpec("silo", kind="app",
                           params={"workers": 2, "transactions": 1})
        assert silo.build() is not None

    def test_program_spec_rejects_unknown(self):
        with pytest.raises(ValueError):
            ProgramSpec("no-such-benchmark")
        with pytest.raises(ValueError):
            ProgramSpec("dekker", kind="no-such-kind")

    def test_specs_are_picklable(self):
        """The whole point: closures don't cross process boundaries."""
        program = ProgramSpec("seqlock", params={"inserted_writes": 2})
        sched = SchedulerSpec("pctwm",
                              {"depth": 2, "k_com": 10, "history": 2})
        p2 = pickle.loads(pickle.dumps(program))
        s2 = pickle.loads(pickle.dumps(sched))
        assert p2.build().name == "seqlock"
        assert s2(seed=1).name == "pctwm"


class TestShardBounds:
    def test_partition_is_exact(self):
        for trials, jobs in ((1, 4), (10, 3), (100, 4), (17, 8)):
            bounds = shard_bounds(trials, jobs)
            covered = [i for start, stop in bounds
                       for i in range(start, stop)]
            assert covered == list(range(trials))

    def test_serial_single_shard(self):
        assert shard_bounds(50, 1, chunks_per_job=1) == [(0, 50)]


# The acceptance contract: two litmus programs x two schedulers, the
# parallel path with 4 workers bit-identical to serial.
EQUIVALENCE_CASES = [
    ("SB", SchedulerSpec("pctwm", {"depth": 2, "k_com": 4, "history": 1})),
    ("SB", SchedulerSpec("pct", {"depth": 2, "k_events": 4})),
    ("MP", SchedulerSpec("pctwm", {"depth": 1, "k_com": 4, "history": 2})),
    ("MP", SchedulerSpec("pct", {"depth": 1, "k_events": 4})),
]


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("litmus,sched", EQUIVALENCE_CASES,
                             ids=lambda c: getattr(c, "name", c))
    def test_bit_identical_aggregates(self, litmus, sched):
        program = ProgramSpec(litmus, kind="litmus")
        serial = run_campaign(program, sched, trials=60, base_seed=11)
        parallel = run_campaign_parallel(program, sched, trials=60,
                                         base_seed=11, jobs=4)
        assert parallel.hits == serial.hits
        assert parallel.inconclusive == serial.inconclusive
        assert parallel.total_steps == serial.total_steps
        assert parallel.total_events == serial.total_events
        assert parallel.program == serial.program
        assert parallel.scheduler == serial.scheduler
        assert len(parallel.run_times_s) == serial.trials

    def test_chunking_does_not_change_results(self):
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("pctwm", {"depth": 2, "k_com": 4})
        results = [
            run_campaign_parallel(program, sched, trials=40, base_seed=5,
                                  jobs=jobs, chunks_per_job=chunks)
            for jobs, chunks in ((2, 1), (2, 4), (3, 2), (4, 5))
        ]
        counts = {(r.hits, r.inconclusive, r.total_steps, r.total_events)
                  for r in results}
        assert len(counts) == 1

    def test_jobs_one_is_serial(self):
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("naive")
        result = run_campaign_parallel(program, sched, trials=10,
                                       base_seed=0, jobs=1)
        assert result.jobs == 1
        assert result.shard_times_s == []


class TestProgressHook:
    def test_progress_reports_monotonic_completion(self):
        snapshots = []
        program = ProgramSpec("SB", kind="litmus")
        sched = SchedulerSpec("naive")
        run_campaign_parallel(program, sched, trials=24, base_seed=0,
                              jobs=2, progress=snapshots.append)
        assert snapshots
        completed = [s.completed_trials for s in snapshots]
        assert completed == sorted(completed)
        assert completed[-1] == 24
        final = snapshots[-1]
        assert final.total_trials == 24
        assert final.trials_per_second > 0
        assert final.eta_s == 0.0
        assert "24/24" in final.render()

    def test_progress_called_on_serial_path_too(self):
        snapshots = []
        run_campaign_parallel(ProgramSpec("SB", kind="litmus"),
                              SchedulerSpec("naive"), trials=5,
                              jobs=1, progress=snapshots.append)
        assert [s.completed_trials for s in snapshots] == [5]

    def test_eta_infinite_before_any_elapsed_time(self):
        p = CampaignProgress(0, 10, 0.0)
        assert p.eta_s == float("inf")
        assert "?" in p.render()


class TestCliJobs:
    def test_campaign_command_with_jobs(self, capsys):
        rc = cli_main(["campaign", "dekker", "--trials", "8",
                       "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dekker / pctwm" in out
        assert "jobs=2" in out

    def test_campaign_command_rejects_unknown_scheduler(self, capsys):
        rc = cli_main(["campaign", "dekker", "--scheduler", "bogus"])
        assert rc == 2

    def test_table3_accepts_jobs_flag(self, capsys):
        rc = cli_main(["table3", "--trials", "6", "--jobs", "2",
                       "--benchmarks", "dekker"])
        assert rc == 0
        assert "dekker" in capsys.readouterr().out
