"""Tests for the three application models (Table 4)."""

import pytest

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.core.depth import estimate_parameters
from repro.runtime import run_once
from repro.workloads.apps import APPLICATIONS, iris, mabain, silo, \
    silo_operations


@pytest.fixture(params=sorted(APPLICATIONS))
def factory(request):
    return APPLICATIONS[request.param]


class TestAppsRun:
    def test_completes_under_c11tester(self, factory):
        result = run_once(factory(), C11TesterScheduler(seed=0),
                          max_steps=100000)
        assert not result.limit_exceeded

    def test_completes_under_pctwm(self, factory):
        est = estimate_parameters(factory(), runs=2, seed=0)
        result = run_once(factory(), PCTWMScheduler(2, est.k_com, 2, seed=0),
                          max_steps=100000)
        assert not result.limit_exceeded

    def test_cores_parameter_recorded(self, factory):
        assert "cores=4" in factory(cores=4).name


class TestRaceDetection:
    """The paper: 'both C11Tester and PCTWM detect data races in all of
    these applications'."""

    @pytest.mark.parametrize("make", [
        lambda s: C11TesterScheduler(seed=s),
        lambda s: PCTWMScheduler(2, 60, 2, seed=s),
    ])
    def test_races_found_every_run(self, factory, make):
        for seed in range(10):
            result = run_once(factory(), make(seed), max_steps=100000)
            assert result.races, f"no race at seed {seed}"
            assert result.bug_kind == "race"


class TestIris:
    def test_flusher_drains_messages(self):
        result = run_once(iris(producers=2, messages=4),
                          C11TesterScheduler(seed=1), max_steps=100000)
        drained, flushed_bytes = result.thread_results["flusher"]
        assert 0 <= drained <= 8
        assert flushed_bytes >= 0

    def test_scales_with_messages(self):
        small = run_once(iris(messages=2), C11TesterScheduler(seed=0),
                         max_steps=100000)
        large = run_once(iris(messages=8), C11TesterScheduler(seed=0),
                         max_steps=100000)
        assert large.k > small.k


class TestMabain:
    def test_writers_insert(self):
        result = run_once(mabain(), C11TesterScheduler(seed=2),
                          max_steps=100000)
        inserted = sum(
            v for name, v in result.thread_results.items()
            if name.startswith("writer")
        )
        assert inserted >= 1

    def test_reader_lookup_returns_counts(self):
        result = run_once(mabain(), C11TesterScheduler(seed=3),
                          max_steps=100000)
        found, total = result.thread_results["reader0"]
        assert found >= 0 and total >= 0


class TestSilo:
    def test_transactions_commit_or_abort(self):
        result = run_once(silo(), C11TesterScheduler(seed=4),
                          max_steps=100000)
        for name, (committed, aborted) in result.thread_results.items():
            assert committed + aborted == 5, name

    def test_silo_operations_counts_commits(self):
        result = run_once(silo(), C11TesterScheduler(seed=5),
                          max_steps=100000)
        ops = silo_operations(result.thread_results)
        expected = sum(c for c, _a in result.thread_results.values())
        assert ops == expected

    def test_silo_operations_handles_garbage(self):
        assert silo_operations({"w": None, "x": 3, "y": (2, 1)}) == 2
