"""Cross-validation: the executor's vector clocks vs the axiomatic hb.

The engine decides happens-before with vector clocks (fast path) while the
audit layer materializes ``hb = (po ∪ sw)+`` from the graph (Section 4).
For programs without thread joins/spawns (whose edges the graph relations
deliberately omit), the two must agree exactly — on every event pair, for
every scheduler, on randomized programs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.memory.events import ACQ, ACQ_REL, REL, RLX, SC as SEQ, \
    happens_before
from repro.runtime import Program, fence, run_once

LOCS = ("X", "Y")
ORDERS = (RLX, ACQ, REL, ACQ_REL, SEQ)

op_spec = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(LOCS),
              st.integers(0, 3), st.sampled_from(ORDERS)),
    st.tuples(st.just("load"), st.sampled_from(LOCS),
              st.sampled_from(ORDERS)),
    st.tuples(st.just("faa"), st.sampled_from(LOCS),
              st.sampled_from((RLX, ACQ, REL, ACQ_REL))),
    st.tuples(st.just("fence"), st.sampled_from((ACQ, REL))),
)

program_spec = st.lists(st.lists(op_spec, min_size=1, max_size=5),
                        min_size=2, max_size=3)


def build(spec) -> Program:
    p = Program("hbx")
    handles = {loc: p.atomic(loc, 0) for loc in LOCS}

    def make_body(ops):
        def body():
            for op in ops:
                if op[0] == "store":
                    _, loc, value, order = op
                    yield handles[loc].store(value, order)
                elif op[0] == "load":
                    _, loc, order = op
                    yield handles[loc].load(order)
                elif op[0] == "faa":
                    _, loc, order = op
                    yield handles[loc].fetch_add(1, order)
                else:
                    yield fence(op[1])

        return body

    for ops in spec:
        p.add_thread(make_body(ops))
    return p


@settings(max_examples=50, deadline=None)
@given(program_spec, st.integers(0, 1), st.integers(0, 500))
def test_clock_hb_equals_graph_hb(spec, which, seed):
    scheduler = (C11TesterScheduler(seed=seed) if which == 0
                 else PCTWMScheduler(2, 8, 2, seed=seed))
    result = run_once(build(spec), scheduler, max_steps=2000)
    graph = result.graph
    hb = graph.hb()
    events = [e for e in graph.events if not e.is_init]
    for a in events:
        for b in events:
            if a is b:
                continue
            assert happens_before(a, b) == hb(a, b), (
                f"clock/graph hb disagree on {a!r} -> {b!r}\n"
                f"clock says {happens_before(a, b)}"
            )


@settings(max_examples=40, deadline=None)
@given(program_spec, st.integers(0, 500))
def test_sw_edges_have_clock_evidence(spec, seed):
    result = run_once(build(spec), C11TesterScheduler(seed=seed),
                      max_steps=2000)
    for a, b in result.graph.sw().edges():
        if a.is_init:
            continue
        assert happens_before(a, b), f"sw edge {a!r} -> {b!r} not in clocks"
