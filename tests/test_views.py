"""Unit tests for thread views and bags (Definition 1)."""

import pytest

from repro.core.views import View
from repro.memory.events import EventKind, Label, RLX, Event


def write(uid, mo_index, loc="X", value=None):
    e = Event(uid=uid, tid=0,
              label=Label(EventKind.WRITE, RLX, loc, wval=value))
    e.mo_index = mo_index
    return e


@pytest.fixture
def init_writes():
    return {"X": write(0, 0, "X", 0), "Y": write(1, 0, "Y", 0)}


class TestView:
    def test_defaults_to_init(self, init_writes):
        view = View(init_writes)
        assert view.get("X") is init_writes["X"]

    def test_set_overwrites(self, init_writes):
        view = View(init_writes)
        w = write(5, 3)
        view.set("X", w)
        assert view.get("X") is w

    def test_join_loc_keeps_mo_later(self, init_writes):
        view = View(init_writes)
        older, newer = write(5, 1), write(6, 2)
        view.join_loc("X", newer)
        view.join_loc("X", older)
        assert view.get("X") is newer

    def test_join_loc_none_is_noop(self, init_writes):
        view = View(init_writes)
        view.join_loc("X", None)
        assert view.get("X") is init_writes["X"]

    def test_join_pointwise(self, init_writes):
        a = View(init_writes)
        b = View(init_writes)
        wx_old, wx_new = write(5, 1, "X"), write(6, 2, "X")
        wy = write(7, 1, "Y")
        a.set("X", wx_new)
        b.set("X", wx_old)
        b.set("Y", wy)
        a.join(b)
        assert a.get("X") is wx_new  # kept the mo-later entry
        assert a.get("Y") is wy      # gained the missing entry

    def test_join_none_is_noop(self, init_writes):
        view = View(init_writes)
        view.join(None)
        assert view.get("X") is init_writes["X"]

    def test_copy_is_snapshot(self, init_writes):
        view = View(init_writes)
        w1, w2 = write(5, 1), write(6, 2)
        view.set("X", w1)
        bag = view.copy()
        view.set("X", w2)
        assert bag.get("X") is w1
        assert view.get("X") is w2

    def test_equality_ignores_representation(self, init_writes):
        a = View(init_writes)
        b = View(init_writes)
        assert a == b
        w = write(5, 1)
        a.set("X", w)
        assert a != b
        b.set("X", w)
        assert a == b

    def test_set_then_join_is_idempotent(self, init_writes):
        view = View(init_writes)
        w = write(5, 1)
        view.set("X", w)
        view.join_loc("X", w)
        assert view.get("X") is w

    def test_contains(self, init_writes):
        view = View(init_writes)
        assert "X" in view
        assert "Z" not in view

    def test_unhashable(self, init_writes):
        with pytest.raises(TypeError):
            hash(View(init_writes))

    def test_items_lists_explicit_entries(self, init_writes):
        view = View(init_writes)
        assert list(view.items()) == []
        w = write(5, 1)
        view.set("X", w)
        assert list(view.items()) == [("X", w)]
