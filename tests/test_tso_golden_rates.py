"""Golden regression: TSO litmus hit rates are pinned exactly.

``scripts/regen_tso_golden_rates.py`` records the exact number of
bug-finding runs for SB/MP/LB on the x86-TSO backend with fixed seeds,
plus SB hit counts for every TSO-supported scheduler.  Scheduling under
TSO is a pure function of the seed and the backend's enabled-action /
communication-event queries (flush agents included), so the counts must
reproduce byte-exactly — any drift means a scheduling-visible behaviour
change (intended changes regenerate the golden file and review the
diff).

Beyond determinism, the golden file pins the memory-model semantics
themselves: SB's weak outcome is reachable (x86 allows W->R
reordering), MP's and LB's are not (x86 forbids theirs).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "tso_litmus_rates.json"


def load_regen_module():
    spec = importlib.util.spec_from_file_location(
        "regen_tso_golden_rates",
        REPO_ROOT / "scripts" / "regen_tso_golden_rates.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def recomputed():
    return load_regen_module().compute_golden()


def test_golden_file_shape(golden):
    assert golden["meta"]["model"] == "tso"
    assert set(golden["rates"]) == {"SB", "MP", "LB"}
    for cells in golden["rates"].values():
        assert len(cells) == 9  # d in 1..3 x h in 1..3
        assert all(isinstance(hits, int) for hits in cells.values())
    assert set(golden["schedulers"]) == {"naive", "pct", "pctwm", "pos"}


def test_hit_rates_reproduce_exactly(golden, recomputed):
    assert recomputed["meta"] == golden["meta"], (
        "grid parameters changed: regenerate "
        "tests/golden/tso_litmus_rates.json"
    )
    for name, cells in golden["rates"].items():
        assert recomputed["rates"][name] == cells, (
            f"{name} TSO hit counts drifted from the golden file; if the "
            "change is intentional run scripts/regen_tso_golden_rates.py "
            "and review the diff"
        )
    assert recomputed["schedulers"] == golden["schedulers"], (
        "per-scheduler SB counts drifted from the golden file; if the "
        "change is intentional run scripts/regen_tso_golden_rates.py "
        "and review the diff"
    )


def test_rates_encode_tso_semantics(golden):
    """The golden grid pins x86-TSO itself, not just determinism.

    SB exhibits the one reordering TSO allows (its two buffered stores
    flush after the opposing reads), at every (d, h); MP and LB require
    R->R/W->W and R->W reorderings TSO forbids, so their weak outcomes
    must never appear.
    """
    rates = golden["rates"]
    assert all(hits > 0 for hits in rates["SB"].values())
    assert all(hits == 0 for hits in rates["MP"].values())
    assert all(hits == 0 for hits in rates["LB"].values())


def test_every_scheduler_reaches_sb_weak_outcome(golden):
    """Flush delays are schedulable by all four TSO schedulers — the
    communication-sink placement (pctwm), priority-change (pct),
    partial-order sampling (pos), and uniform (naive) mechanisms all
    produce the W->R reordering."""
    assert all(hits > 0 for hits in golden["schedulers"].values())
