"""Tests for the online consistency sanitizer (``--sanitize``).

Two directions: clean engines produce zero violations under full
auditing, and a deliberately broken engine (visibility tracker patched to
serve coherence-violating rf candidates) is caught on every audited
trial — reported as ``inconsistent`` campaign outcomes, never a crash.
"""

import pytest

from repro.core import C11TesterScheduler, NaiveRandomScheduler
from repro.harness.campaign import (
    SANITIZE_SAMPLE_STRIDE,
    run_campaign,
    sanitize_this_trial,
)
from repro.litmus import mp2, store_buffering
from repro.memory.events import RLX
from repro.memory.visibility import VisibilityTracker
from repro.runtime import run_once
from repro.runtime.program import Program
from repro.workloads import BENCHMARKS


def _store_store_load() -> Program:
    """One thread: store 1, store 2, load — coherence demands it reads 2."""
    p = Program("ssl")
    x = p.atomic("X", 0)

    def t0():
        yield x.store(1, RLX)
        yield x.store(2, RLX)
        got = yield x.load(RLX)
        return got

    p.add_thread(t0)
    return p


def _break_visibility(monkeypatch):
    """Patch the engine to serve only the mo-oldest write to every read.

    That violates coherence deterministically: a thread that already
    wrote the location is forced to read mo-before its own write.
    """
    def evil(self, tid, loc, clock, seq_cst=False):
        return self._graph.writes_by_loc[loc][:1]

    monkeypatch.setattr(VisibilityTracker, "visible_writes", evil)


class TestSampling:
    def test_modes(self):
        assert sanitize_this_trial("all", 7)
        assert sanitize_this_trial("sampled", 0)
        assert sanitize_this_trial("sampled", SANITIZE_SAMPLE_STRIDE)
        assert not sanitize_this_trial("sampled", 1)
        assert not sanitize_this_trial("off", 0)

    def test_campaign_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="sanitize"):
            run_campaign(mp2, lambda s: C11TesterScheduler(seed=s),
                         trials=1, sanitize="bogus")


class TestCleanEngine:
    @pytest.mark.parametrize("factory", [mp2, store_buffering,
                                         _store_store_load])
    def test_litmus_runs_are_clean(self, factory):
        for seed in range(10):
            result = run_once(factory(), C11TesterScheduler(seed=seed),
                              sanitize=True)
            assert result.violations == []
            assert not result.inconsistent

    def test_benchmark_run_is_clean(self):
        info = BENCHMARKS["msqueue"]
        result = run_once(info.build(), NaiveRandomScheduler(seed=1),
                          sanitize=True, keep_graph=False)
        assert result.violations == []

    def test_sanitize_does_not_change_verdicts(self):
        """The sanitizer observes; it must not perturb scheduling."""
        def campaign(mode):
            return run_campaign(
                BENCHMARKS["msqueue"].build,
                lambda s: NaiveRandomScheduler(seed=s),
                trials=25, base_seed=11, sanitize=mode)

        plain, audited = campaign("off"), campaign("all")
        assert plain.hits == audited.hits
        assert plain.inconclusive == audited.inconclusive
        assert plain.total_steps == audited.total_steps
        assert audited.inconsistent == 0


class TestBrokenEngine:
    def test_run_once_flags_violations(self, monkeypatch):
        _break_visibility(monkeypatch)
        result = run_once(_store_store_load(),
                          C11TesterScheduler(seed=0), sanitize=True)
        assert result.inconsistent
        # Both layers fire: the O(1) online checker and the full
        # end-of-run audit each contribute distinct violation strings.
        assert any("online:" in v for v in result.violations)
        assert any("online:" not in v for v in result.violations)
        assert result.diagnostics is not None

    def test_unsanitized_run_stays_silent(self, monkeypatch):
        """Without --sanitize the broken engine goes unnoticed (that is
        the point of having the sanitizer)."""
        _break_visibility(monkeypatch)
        result = run_once(_store_store_load(), C11TesterScheduler(seed=0))
        assert result.violations == []

    def test_campaign_contains_inconsistency(self, monkeypatch):
        _break_visibility(monkeypatch)
        result = run_campaign(
            _store_store_load, lambda s: C11TesterScheduler(seed=s),
            trials=12, sanitize="all")
        assert result.inconsistent == 12
        assert result.errors == 0
        assert not result.interrupted
        assert result.completed == 12
        assert result.violation_samples
        assert "trial 0" in result.violation_samples[0]

    def test_sampled_campaign_audits_every_nth_trial(self, monkeypatch):
        _break_visibility(monkeypatch)
        trials = SANITIZE_SAMPLE_STRIDE + 2
        result = run_campaign(
            _store_store_load, lambda s: C11TesterScheduler(seed=s),
            trials=trials, sanitize="sampled")
        assert result.inconsistent == 2  # indices 0 and STRIDE only

    def test_off_campaign_sees_nothing(self, monkeypatch):
        _break_visibility(monkeypatch)
        result = run_campaign(
            _store_store_load, lambda s: C11TesterScheduler(seed=s),
            trials=5, sanitize="off")
        assert result.inconsistent == 0
