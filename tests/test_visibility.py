"""Unit tests for coherence-respecting visible-write computation."""

import pytest

from repro.memory.events import RLX, SC as SEQ
from repro.memory.execution import ExecutionGraph
from repro.memory.visibility import VisibilityTracker


def setup():
    g = ExecutionGraph()
    g.add_init_write("X", 0)
    return g, VisibilityTracker(g)


class TestBasicVisibility:
    def test_only_init_visible_initially(self):
        g, vis = setup()
        writes = vis.visible_writes(0, "X", clock=(0, 0))
        assert [w.label.wval for w in writes] == [0]

    def test_unsynchronized_writes_all_visible(self):
        g, vis = setup()
        w1 = g.add_write(0, "X", 1, RLX)
        w1.clock = (1, 0)
        w2 = g.add_write(0, "X", 2, RLX)
        w2.clock = (2, 0)
        # Thread 1 never synchronized: init, w1 and w2 all visible.
        writes = vis.visible_writes(1, "X", clock=(0, 0))
        assert [w.label.wval for w in writes] == [0, 1, 2]

    def test_hb_write_hides_older_writes(self):
        g, vis = setup()
        w1 = g.add_write(0, "X", 1, RLX)
        w1.clock = (1, 0)
        w2 = g.add_write(0, "X", 2, RLX)
        w2.clock = (2, 0)
        # Thread 1 has joined thread 0's clock up to w2 (e.g. via sw):
        # w2 happens-before the read point, so init and w1 are hidden.
        writes = vis.visible_writes(1, "X", clock=(2, 1))
        assert [w.label.wval for w in writes] == [2]

    def test_own_writes_hide_older(self):
        g, vis = setup()
        w = g.add_write(0, "X", 1, RLX)
        w.clock = (1,)
        writes = vis.visible_writes(0, "X", clock=(1,))
        assert [x.label.wval for x in writes] == [1]

    def test_unknown_location_raises(self):
        _g, vis = setup()
        with pytest.raises(KeyError):
            vis.visible_writes(0, "Z", clock=(0,))


class TestReadCoherence:
    def test_note_read_raises_floor(self):
        g, vis = setup()
        w1 = g.add_write(0, "X", 1, RLX)
        w1.clock = (1, 0)
        w2 = g.add_write(0, "X", 2, RLX)
        w2.clock = (2, 0)
        vis.note_read(1, w1)  # thread 1 observed w1
        writes = vis.visible_writes(1, "X", clock=(0, 0))
        # Reading mo-before w1 would violate read coherence.
        assert [w.label.wval for w in writes] == [1, 2]

    def test_floors_are_per_thread(self):
        g, vis = setup()
        w1 = g.add_write(0, "X", 1, RLX)
        w1.clock = (1, 0, 0)
        vis.note_read(1, w1)
        # Thread 2 is unaffected by thread 1's reads.
        writes = vis.visible_writes(2, "X", clock=(0, 0, 0))
        assert [w.label.wval for w in writes] == [0, 1]

    def test_floor_monotone(self):
        g, vis = setup()
        w1 = g.add_write(0, "X", 1, RLX)
        w1.clock = (1, 0)
        w2 = g.add_write(0, "X", 2, RLX)
        w2.clock = (2, 0)
        vis.note_read(1, w2)
        vis.note_read(1, w1)  # older observation cannot lower the floor
        writes = vis.visible_writes(1, "X", clock=(0, 0))
        assert [w.label.wval for w in writes] == [2]


class TestSeqCstFloor:
    def test_sc_read_floors_at_last_sc_write(self):
        g, vis = setup()
        w1 = g.add_write(0, "X", 1, RLX)
        w1.clock = (1, 0)
        w_sc = g.add_write(0, "X", 2, SEQ)
        w_sc.clock = (2, 0)
        vis.note_write(w_sc)
        w3 = g.add_write(0, "X", 3, RLX)
        w3.clock = (3, 0)
        sc_view = vis.visible_writes(1, "X", clock=(0, 0), seq_cst=True)
        rlx_view = vis.visible_writes(1, "X", clock=(0, 0), seq_cst=False)
        assert [w.label.wval for w in sc_view] == [2, 3]
        assert [w.label.wval for w in rlx_view] == [0, 1, 2, 3]

    def test_relaxed_write_does_not_raise_sc_floor(self):
        g, vis = setup()
        w1 = g.add_write(0, "X", 1, RLX)
        w1.clock = (1, 0)
        vis.note_write(w1)
        writes = vis.visible_writes(1, "X", clock=(0, 0), seq_cst=True)
        assert [w.label.wval for w in writes] == [0, 1]


class TestHistoryBounding:
    def fill(self, count):
        g, vis = setup()
        for i in range(count):
            w = g.add_write(0, "X", i + 1, RLX)
            w.clock = (i + 1, 0)
        return g, vis

    def test_history_takes_mo_latest(self):
        _g, vis = self.fill(5)
        writes = vis.bounded_visible_writes(1, "X", clock=(0, 0), history=2)
        assert [w.label.wval for w in writes] == [4, 5]

    def test_history_one_is_latest_only(self):
        _g, vis = self.fill(3)
        writes = vis.bounded_visible_writes(1, "X", clock=(0, 0), history=1)
        assert [w.label.wval for w in writes] == [3]

    def test_history_larger_than_visible_set(self):
        _g, vis = self.fill(2)
        writes = vis.bounded_visible_writes(1, "X", clock=(0, 0), history=99)
        assert [w.label.wval for w in writes] == [0, 1, 2]

    def test_history_never_empty(self):
        _g, vis = self.fill(4)
        writes = vis.bounded_visible_writes(1, "X", clock=(0, 0), history=1)
        assert writes

    def test_invalid_history_raises(self):
        _g, vis = self.fill(1)
        with pytest.raises(ValueError):
            vis.bounded_visible_writes(1, "X", clock=(0, 0), history=0)

    def test_visible_set_is_mo_suffix(self):
        """Definition 5's window composes with coherence: always a suffix."""
        g, vis = self.fill(6)
        w3 = g.writes_by_loc["X"][3]
        vis.note_read(1, w3)
        writes = vis.visible_writes(1, "X", clock=(0, 0))
        indices = [w.mo_index for w in writes]
        assert indices == list(range(indices[0], indices[-1] + 1))
        assert indices[-1] == len(g.writes_by_loc["X"]) - 1
