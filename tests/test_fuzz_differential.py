"""Differential testing over generated programs.

Three standing modes, each swept over a fixed 200-seed block:

* fast vs reference engine, trace-exact (plain and sanitizer-on),
  under both memory models;
* TSO vs C11 final-state agreement on generated race-free determinate
  programs;
* sanitizer cleanliness: generated race-free programs never trip the
  online consistency sanitizer.

Every divergence is dumped as a replayable JSON artifact whose path is
embedded in the assertion message.
"""

import pytest

from repro.core import NaiveRandomScheduler
from repro.fuzz import (
    FuzzConfig,
    build_plan_program,
    engine_divergences,
    model_divergences,
    plan_program,
    plan_step_bound,
    write_divergence,
)
from repro.harness.seeding import derive_trial_seed
from repro.memory.model import resolve_model

#: The fixed seed block: ≥200 generated programs per differential mode.
SEED_COUNT = 200
SEEDS = [derive_trial_seed(0xD1FF, i) for i in range(SEED_COUNT)]


def _fail(divergences, what):
    paths = [d.get("artifact", "<no dump dir>") for d in divergences]
    assert not divergences, (
        f"{len(divergences)} {what} divergence(s); "
        f"replayable artifacts: {paths}")


class TestEngineEquivalence:
    def test_fast_vs_reference_trace_exact(self, tmp_path):
        divs = engine_divergences(SEEDS, dump_dir=str(tmp_path))
        _fail(divs, "fast-vs-reference")

    def test_fast_vs_reference_sanitizer_on(self, tmp_path):
        divs = engine_divergences(
            SEEDS, sanitize=True, dump_dir=str(tmp_path))
        _fail(divs, "sanitized fast-vs-reference")

    def test_nonatomic_programs_agree_across_engines(self, tmp_path):
        divs = engine_divergences(
            SEEDS[:60], config=FuzzConfig(allow_nonatomic=True),
            runs_per_seed=1, dump_dir=str(tmp_path))
        _fail(divs, "nonatomic fast-vs-reference")


class TestModelDifferential:
    def test_tso_vs_c11_on_determinate_programs(self, tmp_path):
        divs = model_divergences(SEEDS, dump_dir=str(tmp_path))
        _fail(divs, "tso-vs-c11")


class TestSanitizerClean:
    @pytest.mark.parametrize("model", ["c11", "tso"])
    def test_generated_programs_never_trip_sanitizer(self, model, tmp_path):
        backend = resolve_model(model)
        config = FuzzConfig(oracle="off")
        bad = []
        for seed in SEEDS:
            plan = plan_program(seed, config)
            result = backend.run_once(
                build_plan_program(plan), NaiveRandomScheduler(seed=seed),
                max_steps=plan_step_bound(plan), sanitize=True,
                keep_graph=False)
            if result.violations:
                bad.append(write_divergence(str(tmp_path), {
                    "kind": "sanitizer", "gen_seed": seed, "seed": seed,
                    "model": model, "plan": plan,
                    "violations": list(result.violations),
                }))
        assert not bad, f"sanitizer violations; artifacts: {bad}"
