"""Unit tests for the operation DSL handles and descriptors."""

from repro.memory.events import ACQ, ACQ_REL, NA, REL, RLX, SC as SEQ
from repro.runtime.api import Atomic, NonAtomic, fence, join, sched_yield
from repro.runtime.ops import (
    CasOp,
    FenceOp,
    JoinOp,
    LoadOp,
    RmwOp,
    StoreOp,
    YieldOp,
    is_communication_op,
)


class TestAtomicHandle:
    def setup_method(self):
        self.x = Atomic("X")

    def test_load(self):
        op = self.x.load(ACQ)
        assert isinstance(op, LoadOp)
        assert op.loc == "X" and op.order is ACQ

    def test_store(self):
        op = self.x.store(7, REL)
        assert isinstance(op, StoreOp)
        assert op.value == 7 and op.order is REL

    def test_default_order_is_seq_cst(self):
        assert self.x.load().order is SEQ
        assert self.x.store(1).order is SEQ

    def test_custom_default_order(self):
        y = Atomic("Y", default_order=RLX)
        assert y.load().order is RLX

    def test_fetch_add_update_function(self):
        op = self.x.fetch_add(3, RLX)
        assert isinstance(op, RmwOp)
        assert op.update(10) == 13

    def test_fetch_sub(self):
        assert self.x.fetch_sub(2).update(10) == 8

    def test_exchange_ignores_old(self):
        assert self.x.exchange(99).update(5) == 99

    def test_rmw_custom_function(self):
        op = self.x.rmw(lambda v: v * 2, ACQ_REL)
        assert op.update(21) == 42 and op.order is ACQ_REL

    def test_cas_orders(self):
        op = self.x.cas(0, 1, ACQ_REL, failure_order=ACQ)
        assert isinstance(op, CasOp)
        assert (op.expected, op.desired) == (0, 1)
        assert op.success_order is ACQ_REL and op.failure_order is ACQ

    def test_ops_are_single_use_instances(self):
        assert self.x.load(RLX) is not self.x.load(RLX)


class TestNonAtomicHandle:
    def test_na_orders(self):
        d = NonAtomic("D")
        assert d.load().order is NA
        assert d.store(1).order is NA


class TestFreeFunctions:
    def test_fence(self):
        assert isinstance(fence(ACQ), FenceOp)
        assert fence().order is SEQ

    def test_join(self):
        op = join("worker")
        assert isinstance(op, JoinOp) and op.thread_name == "worker"

    def test_sched_yield(self):
        assert isinstance(sched_yield(), YieldOp)


class TestCommunicationPredicate:
    """isCommunicationEvent on pending ops: SC ∪ R ∪ F⊒acq."""

    def test_all_reads_are_communication(self):
        for order in (NA, RLX, ACQ, SEQ):
            assert is_communication_op(LoadOp("X", order))

    def test_rmw_and_cas_are_communication(self):
        assert is_communication_op(RmwOp("X", lambda v: v, RLX))
        assert is_communication_op(CasOp("X", 0, 1, RLX, RLX))

    def test_sc_store_is_communication(self):
        assert is_communication_op(StoreOp("X", 1, SEQ))

    def test_relaxed_and_release_stores_are_not(self):
        assert not is_communication_op(StoreOp("X", 1, RLX))
        assert not is_communication_op(StoreOp("X", 1, REL))

    def test_acquire_fences_are_communication(self):
        assert is_communication_op(FenceOp(ACQ))
        assert is_communication_op(FenceOp(ACQ_REL))
        assert is_communication_op(FenceOp(SEQ))

    def test_release_fence_is_not(self):
        assert not is_communication_op(FenceOp(REL))

    def test_scheduling_ops_are_not(self):
        assert not is_communication_op(JoinOp("t"))
        assert not is_communication_op(YieldOp())
