"""Unit tests for the ``repro bench`` machinery (no heavy measurement)."""

from __future__ import annotations

import json

from repro.harness.bench import (
    PRE_FASTPATH_BASELINE,
    check_against_baseline,
    environment_fingerprint,
    measure_events_per_sec,
    render_bench,
    SCHEDULER_SPECS,
    WORKLOAD_SPECS,
)


def make_doc(silo_pctwm: float) -> dict:
    return {
        "meta": {
            "tool": "repro bench", "mode": "quick", "seed": 0,
            "environment": environment_fingerprint(),
        },
        "engine_events_per_sec": {
            "silo": {"pctwm": silo_pctwm, "naive": 90000.0},
        },
        "baseline_pre_fastpath": PRE_FASTPATH_BASELINE,
    }


def test_fingerprint_is_json_serializable():
    fp = environment_fingerprint()
    assert {"python", "platform", "machine", "cpu_count"} <= set(fp)
    json.dumps(fp)  # must not raise


def test_check_passes_within_tolerance():
    baseline = make_doc(60000.0)
    current = make_doc(45000.0)  # -25%, inside the 30% band
    assert check_against_baseline(current, baseline, tolerance=0.30) == []


def test_check_fails_beyond_tolerance():
    baseline = make_doc(60000.0)
    current = make_doc(40000.0)  # -33%
    failures = check_against_baseline(current, baseline, tolerance=0.30)
    assert len(failures) == 1
    assert "silo/pctwm" in failures[0]


def test_check_skips_missing_cells():
    baseline = make_doc(60000.0)
    baseline["engine_events_per_sec"]["iris"] = {"pos": 50000.0}
    current = make_doc(60000.0)  # no iris measurement at all
    assert check_against_baseline(current, baseline) == []


def test_improvements_never_fail():
    baseline = make_doc(60000.0)
    current = make_doc(200000.0)
    assert check_against_baseline(current, baseline) == []


def test_check_gates_campaign_throughput():
    baseline = make_doc(60000.0)
    baseline["campaign_throughput"] = {"serial_trials_per_sec": 500.0}
    current = make_doc(60000.0)
    current["campaign_throughput"] = {"serial_trials_per_sec": 300.0}
    failures = check_against_baseline(current, baseline, tolerance=0.30)
    assert len(failures) == 1
    assert "campaign serial" in failures[0]
    current["campaign_throughput"]["serial_trials_per_sec"] = 400.0
    assert check_against_baseline(current, baseline,
                                  tolerance=0.30) == []
    del current["campaign_throughput"]  # nothing measured -> skipped
    assert check_against_baseline(current, baseline,
                                  tolerance=0.30) == []


def test_render_mentions_speedup_vs_pre_fastpath():
    text = render_bench(make_doc(62358.0))
    assert "silo" in text
    assert "pre-fastpath" in text
    assert "events/s" in text


def test_measure_produces_positive_rate():
    """One tiny real measurement: the plumbing end to end."""
    cell = measure_events_per_sec(
        WORKLOAD_SPECS["iris"], SCHEDULER_SPECS["naive"],
        runs=2, repeats=1,
    )
    assert cell["events_per_sec"] > 0
    assert cell["events_per_batch"] > 0


def test_committed_trajectory_shows_fastpath_win():
    """The checked-in BENCH_engine.json carries the before/after story:
    the fast engine clears 1.5x over the pre-fastpath engine on
    silo/pctwm (the roadmap's acceptance bar)."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    doc = json.loads(path.read_text())
    after = doc["engine_events_per_sec"]["silo"]["pctwm"]
    before = doc["baseline_pre_fastpath"]["silo"]["pctwm"]
    assert after >= 1.5 * before


def test_committed_trajectory_shows_campaign_fastpath_win():
    """The campaign fast path's before/after is recorded under
    ``campaign_fastpath`` and shows a real serial-throughput win."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    doc = json.loads(path.read_text())
    fastpath = doc["campaign_fastpath"]
    before = fastpath["before"]["serial_trials_per_sec"]
    after = fastpath["after"]["serial_trials_per_sec"]
    assert after > before
    assert fastpath["speedup"] >= 1.1
