"""Tests for the PCTWM algorithm (Algorithms 1 and 2 of the paper).

Covers the paper's worked examples directly: the MP1 view-propagation
guarantee of Figure 1, the MP2 executions of Figures 2-4, and the d = 0 /
d = 1 behaviours described in Section 3.3.
"""

import pytest

from repro.core import PCTWMScheduler
from repro.litmus import mp1, mp2, p1, store_buffering
from repro.memory.events import RLX
from repro.runtime import Program, run_once
from tests.helpers import hit_count


class TestParameters:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PCTWMScheduler(depth=-1, k_com=5)
        with pytest.raises(ValueError):
            PCTWMScheduler(depth=1, k_com=0)
        with pytest.raises(ValueError):
            PCTWMScheduler(depth=1, k_com=5, history=0)

    def test_change_points_are_distinct(self):
        sched = PCTWMScheduler(depth=3, k_com=10, seed=5)
        prog = store_buffering()
        run_once(prog, sched)
        points = list(sched._slot_by_count.keys())
        assert len(points) == 3
        assert len(set(points)) == 3
        assert all(1 <= pt <= 10 for pt in points)

    def test_slots_preserve_tuple_order(self):
        """d_1 gets slot d-1 (highest low slot), d_d gets slot 0."""
        sched = PCTWMScheduler(depth=3, k_com=10, seed=5)
        run_once(store_buffering(), sched)
        slots = list(sched._slot_by_count.values())
        assert sorted(slots, reverse=True) == [2, 1, 0]

    def test_depth_larger_than_kcom_still_works(self):
        sched = PCTWMScheduler(depth=5, k_com=2, seed=0)
        result = run_once(store_buffering(), sched)
        assert result.steps > 0


class TestDepthZero:
    """Section 3.3: the d = 0 execution allows no communication at all."""

    def test_sb_always_hits(self):
        assert hit_count(store_buffering,
                         lambda s: PCTWMScheduler(0, 4, 1, seed=s), 100) \
            == 100

    def test_d0_is_deterministic_up_to_priorities(self):
        """d = 0 runs threads serially; every read is thread-local."""
        for seed in range(20):
            result = run_once(store_buffering(),
                              PCTWMScheduler(0, 4, 1, seed=seed))
            assert result.thread_results == {"left": 0, "right": 0}

    def test_d0_p1_reads_initial_value(self):
        """Figure-2 analogue: the P1 reader sees only the initial value.

        Uses relaxed accesses so that the writer's stores are not SC
        communication events and the read is the only sink, matching the
        paper's Section 3.3 walkthrough.
        """
        for seed in range(20):
            result = run_once(p1(k=5, order=RLX),
                              PCTWMScheduler(0, 1, 1, seed=seed))
            assert result.thread_results["reader"] == 0
            assert not result.bug_found

    def test_d0_mp2_no_communication(self):
        """Figure 2: every read returns the thread-local (initial) view."""
        from repro.analysis import count_external_reads
        for seed in range(20):
            result = run_once(mp2(), PCTWMScheduler(0, 3, 1, seed=seed))
            assert count_external_reads(result.graph) == 0
            assert not result.bug_found


class TestDepthOne:
    def test_p1_with_h1_reads_last_write(self):
        """d=1, h=1: the single sink reads the mo-latest write (X = k)."""
        assert hit_count(lambda: p1(k=5, order=RLX),
                         lambda s: PCTWMScheduler(1, 1, 1, seed=s), 60) == 60

    def test_p1_with_h2_is_about_half(self):
        """Section 3.3: with h=2 the sink picks X=k-1 or X=k uniformly."""
        hits = hit_count(lambda: p1(k=5, order=RLX),
                         lambda s: PCTWMScheduler(1, 1, 2, seed=s), 400)
        assert 150 <= hits <= 250  # ~50%

    def test_external_reads_bounded_by_d(self):
        from repro.analysis import count_external_reads
        for seed in range(30):
            result = run_once(mp2(), PCTWMScheduler(1, 3, 1, seed=seed))
            assert count_external_reads(result.graph) <= 1


class TestDepthTwo:
    def test_mp2_hits_at_rate_of_ordered_pairs(self):
        """Figure 4: the bug needs the ordered sink tuple [e2, e4] out of
        P(3, 2) = 6 ordered pairs -> about 1/6 of runs."""
        trials = 600
        hits = hit_count(mp2, lambda s: PCTWMScheduler(2, 3, 1, seed=s),
                         trials)
        expected = trials / 6
        assert expected * 0.55 <= hits <= expected * 1.6

    def test_mp2_never_hits_below_depth(self):
        assert hit_count(mp2, lambda s: PCTWMScheduler(1, 3, 1, seed=s),
                         200) == 0


class TestViewPropagation:
    """Algorithm 2 semantics, including the paper's Figure 1 example."""

    def test_mp1_fence_guarantee(self):
        """Figure 1: if the reader sees the flag (a=1), the acquire fence
        must deliver the data (b=1) — (1, 0) is impossible."""
        for seed in range(300):
            result = run_once(mp1(), PCTWMScheduler(2, 6, 2, seed=seed))
            assert not result.bug_found, f"MP1 violated at seed {seed}"
            a, b = result.thread_results["reader"]
            assert (a, b) != (1, 0)

    def test_relaxed_rf_propagates_only_its_location(self):
        """Figure 4's key point: a relaxed communication updates the view
        only for the location read, so T3 can see Y=1 but X=0."""
        hits = hit_count(mp2, lambda s: PCTWMScheduler(2, 3, 1, seed=s),
                         400)
        assert hits > 0

    def test_release_acquire_rf_propagates_whole_view(self):
        """If MP2's flag used rel/acq, seeing Y=1 would imply X=1."""
        p = Program("MP2-sync")
        x = p.atomic("X", 0)
        y = p.atomic("Y", 0)

        def t1():
            yield x.store(1, RLX)

        def t2():
            a = yield x.load(RLX)
            if a == 1:
                from repro.memory.events import REL
                yield y.store(1, REL)

        def t3():
            from repro.memory.events import ACQ
            from repro.runtime.errors import require
            b = yield y.load(ACQ)
            if b == 1:
                c = yield x.load(RLX)
                require(c == 1, "sync must deliver X")

        p.add_thread(t1)
        p.add_thread(t2)
        p.add_thread(t3)
        for seed in range(300):
            result = run_once(p, PCTWMScheduler(2, 3, 1, seed=seed))
            assert not result.bug_found, f"rel/acq violated at seed {seed}"

    def test_sc_reads_observe_sc_writes(self):
        """SC events absorb their SC-predecessor's bag (lines 6-8), so a
        d=0 run with SC accesses still sees prior SC writes."""
        p = Program("sc-chain")
        x = p.atomic("X", 0)
        from repro.memory.events import SC as SEQ

        def writer():
            yield x.store(1, SEQ)

        def reader():
            return (yield x.load(SEQ))

        p.add_thread(writer)
        p.add_thread(reader)
        saw_one = 0
        for seed in range(40):
            result = run_once(p, PCTWMScheduler(0, 4, 1, seed=seed))
            value = result.thread_results["reader"]
            # When the writer runs first (half the priority assignments),
            # the SC read must observe the SC write through the SC chain.
            if value == 1:
                saw_one += 1
        assert saw_one > 0

    def test_sb_with_sc_accesses_never_weak(self):
        """SB with all-SC accesses: the weak outcome must never appear."""
        from repro.memory.events import SC as SEQ
        assert hit_count(lambda: store_buffering(order=SEQ),
                         lambda s: PCTWMScheduler(1, 4, 2, seed=s),
                         200) == 0


class TestReproducibility:
    def test_same_seed_same_outcome(self):
        for seed in (0, 7, 123):
            first = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=seed))
            second = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=seed))
            assert first.bug_found == second.bug_found
            assert first.thread_results == second.thread_results

    def test_different_seeds_vary(self):
        outcomes = {
            run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=s)).bug_found
            for s in range(60)
        }
        assert outcomes == {True, False}
