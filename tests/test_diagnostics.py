"""Tests for structured failure diagnostics.

Deadlocks, exhausted step budgets, and wall-clock timeouts must come with
a machine-readable dump (per-thread pending op, last-k events, visibility
floors) that is JSON-serializable — it travels inside bug artifacts — and
pretty-printable for humans.
"""

import json

from repro.core import C11TesterScheduler
from repro.litmus import mp2
from repro.memory.events import ACQ, REL, RLX
from repro.runtime import (
    DeadlockError,
    ReplayDivergenceError,
    ReproError,
    render_diagnostics,
    run_once,
)
from repro.runtime.api import join
from repro.runtime.program import Program


def _mutual_join() -> Program:
    """t0 joins t1 while t1 joins t0: a guaranteed deadlock."""
    p = Program("mutual-join")
    x = p.atomic("X", 0)

    def t0():
        yield x.store(1, RLX)
        yield join("t1")

    def t1():
        yield x.store(2, RLX)
        yield join("t0")

    p.add_thread(t0)
    p.add_thread(t1)
    return p


def _handshake() -> Program:
    p = Program("handshake")
    flag = p.atomic("F", 0)

    def producer():
        yield flag.store(1, REL)

    def consumer():
        got = yield flag.load(ACQ)
        return got

    p.add_thread(producer)
    p.add_thread(consumer)
    return p


class TestFailureDiagnostics:
    def test_deadlock_produces_diagnostics(self):
        result = run_once(_mutual_join(), C11TesterScheduler(seed=0))
        assert result.bug_found and result.bug_kind == "deadlock"
        diag = result.diagnostics
        assert diag is not None
        assert diag["steps"] == result.steps
        assert len(diag["threads"]) == 2
        # Both threads are blocked on their join; the pending op is shown.
        pendings = [t["pending"] for t in diag["threads"]]
        assert all(p and "Join" in p for p in pendings)
        assert not any(t["finished"] for t in diag["threads"])
        assert diag["last_events"]
        assert "views" in diag

    def test_step_budget_produces_diagnostics(self):
        from repro.workloads import BENCHMARKS

        result = run_once(BENCHMARKS["msqueue"].build(),
                          C11TesterScheduler(seed=0), max_steps=5)
        assert result.limit_exceeded
        assert result.diagnostics is not None
        assert result.diagnostics["steps"] == 5
        # Some thread is mid-flight with a pending operation to show.
        assert any(t["pending"] for t in result.diagnostics["threads"])

    def test_wall_timeout_produces_diagnostics(self):
        result = run_once(mp2(), C11TesterScheduler(seed=0),
                          wall_timeout_s=0.0)
        assert result.timed_out
        assert result.diagnostics is not None

    def test_clean_run_has_no_diagnostics(self):
        result = run_once(_handshake(), C11TesterScheduler(seed=0))
        assert not result.bug_found
        assert result.diagnostics is None

    def test_diagnostics_are_json_serializable(self):
        """The dump travels inside JSON bug artifacts verbatim."""
        result = run_once(_mutual_join(), C11TesterScheduler(seed=0))
        restored = json.loads(json.dumps(result.diagnostics))
        assert restored["steps"] == result.diagnostics["steps"]

    def test_render_is_human_readable(self):
        result = run_once(_mutual_join(), C11TesterScheduler(seed=0))
        text = render_diagnostics(result.diagnostics)
        assert "t0" in text and "t1" in text
        assert "pending" in text
        # The last-events section shows formatted events, e.g. "W.X".
        assert "W" in text

    def test_render_tolerates_minimal_dump(self):
        assert isinstance(render_diagnostics({"steps": 0, "threads": [],
                                              "last_events": []}), str)


class TestErrorTypes:
    def test_deadlock_error_carries_diagnostics(self):
        err = DeadlockError("stuck", diagnostics={"steps": 3})
        assert err.diagnostics == {"steps": 3}
        assert isinstance(err, ReproError)

    def test_replay_divergence_is_a_repro_error(self):
        assert issubclass(ReplayDivergenceError, ReproError)
