"""Tests for behavioural-coverage measurement (Section 5.4's sample set)."""

import pytest

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.core.guarantees import pctwm_sample_space
from repro.harness import coverage_campaign, execution_signature
from repro.litmus import p1, store_buffering
from repro.memory.events import RLX
from repro.runtime import run_once


class TestSignature:
    def test_same_run_same_signature(self):
        a = run_once(store_buffering(), C11TesterScheduler(seed=1))
        b = run_once(store_buffering(), C11TesterScheduler(seed=1))
        assert execution_signature(a.graph) == execution_signature(b.graph)

    def test_different_rf_different_signature(self):
        # d=0 forces both reads to init; the naive SC schedule differs.
        from repro.core import NaiveRandomScheduler
        weak = run_once(store_buffering(), PCTWMScheduler(0, 4, 1, seed=0))
        sc = run_once(store_buffering(), NaiveRandomScheduler(seed=0))
        assert execution_signature(weak.graph) \
            != execution_signature(sc.graph)

    def test_signature_ignores_execution_order(self):
        """Two d=0 runs with opposite priorities read identically."""
        signatures = {
            execution_signature(
                run_once(store_buffering(),
                         PCTWMScheduler(0, 4, 1, seed=s)).graph
            )
            for s in range(20)
        }
        assert len(signatures) == 1


class TestCoverageCampaign:
    def test_pctwm_d0_samples_single_execution(self):
        report = coverage_campaign(
            store_buffering,
            lambda s: PCTWMScheduler(0, 4, 1, seed=s), trials=40,
        )
        assert report.distinct == 1
        assert report.bug_signatures == 1
        assert report.concentration == 40.0

    def test_c11tester_samples_more(self):
        restricted = coverage_campaign(
            store_buffering,
            lambda s: PCTWMScheduler(0, 4, 1, seed=s), trials=60,
        )
        free = coverage_campaign(
            store_buffering,
            lambda s: C11TesterScheduler(seed=s), trials=60,
        )
        assert free.distinct > restricted.distinct

    def test_sample_space_bound_holds_empirically(self):
        """Distinct behaviours at (d, h) never exceed the Section 5.4
        bound C(k_com, d) · d! · h^d (for straight-line programs)."""
        for h in (1, 2, 3):
            report = coverage_campaign(
                lambda: p1(k=5, order=RLX),
                lambda s: PCTWMScheduler(1, 1, h, seed=s), trials=120,
            )
            assert report.distinct <= pctwm_sample_space(1, 1, h)

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            coverage_campaign(store_buffering,
                              lambda s: C11TesterScheduler(seed=s),
                              trials=0)
