"""Tests for behavioural-coverage measurement (Section 5.4's sample set)."""

import pytest

from repro.core import (C11TesterScheduler, NaiveRandomScheduler,
                        PCTWMScheduler)
from repro.core.guarantees import pctwm_sample_space
from repro.harness import (behaviour_shape, coverage_campaign,
                           execution_signature, weak_read_count)
from repro.litmus import ALL_LITMUS, p1, store_buffering
from repro.memory.events import RLX
from repro.runtime import run_once


class TestSignature:
    def test_same_run_same_signature(self):
        a = run_once(store_buffering(), C11TesterScheduler(seed=1))
        b = run_once(store_buffering(), C11TesterScheduler(seed=1))
        assert execution_signature(a.graph) == execution_signature(b.graph)

    def test_different_rf_different_signature(self):
        # d=0 forces both reads to init; the naive SC schedule differs.
        from repro.core import NaiveRandomScheduler
        weak = run_once(store_buffering(), PCTWMScheduler(0, 4, 1, seed=0))
        sc = run_once(store_buffering(), NaiveRandomScheduler(seed=0))
        assert execution_signature(weak.graph) \
            != execution_signature(sc.graph)

    def test_signature_ignores_execution_order(self):
        """Two d=0 runs with opposite priorities read identically."""
        signatures = {
            execution_signature(
                run_once(store_buffering(),
                         PCTWMScheduler(0, 4, 1, seed=s)).graph
            )
            for s in range(20)
        }
        assert len(signatures) == 1


class TestCoverageCampaign:
    def test_pctwm_d0_samples_single_execution(self):
        report = coverage_campaign(
            store_buffering,
            lambda s: PCTWMScheduler(0, 4, 1, seed=s), trials=40,
        )
        assert report.distinct == 1
        assert report.bug_signatures == 1
        assert report.concentration == 40.0

    def test_c11tester_samples_more(self):
        restricted = coverage_campaign(
            store_buffering,
            lambda s: PCTWMScheduler(0, 4, 1, seed=s), trials=60,
        )
        free = coverage_campaign(
            store_buffering,
            lambda s: C11TesterScheduler(seed=s), trials=60,
        )
        assert free.distinct > restricted.distinct

    def test_sample_space_bound_holds_empirically(self):
        """Distinct behaviours at (d, h) never exceed the Section 5.4
        bound C(k_com, d) · d! · h^d (for straight-line programs)."""
        for h in (1, 2, 3):
            report = coverage_campaign(
                lambda: p1(k=5, order=RLX),
                lambda s: PCTWMScheduler(1, 1, h, seed=s), trials=120,
            )
            assert report.distinct <= pctwm_sample_space(1, 1, h)

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            coverage_campaign(store_buffering,
                              lambda s: C11TesterScheduler(seed=s),
                              trials=0)


def _pctwm(seed):
    return PCTWMScheduler(depth=2, k_com=6, history=2, seed=seed)


def _naive(seed):
    return NaiveRandomScheduler(seed=seed)


class TestWeakReadCount:
    """Golden counts for the stale-read counter on MP/SB/LB.

    The numbers are exact and deterministic (fixed seeds): any engine or
    scheduler change that alters a single RNG draw shows up as a diff.
    Naive random scheduling under the C11 backend always serves the
    mo-maximal visible write, so its weak-read tally is structurally 0 —
    the weak behaviours are exactly what PCTWM's history knob buys.
    """

    GOLDEN = {
        # (litmus, scheduler): (weak_reads, weak_trials) @ 200 trials.
        ("MP", "pctwm"): (123, 123),
        ("SB", "pctwm"): (200, 173),
        ("LB", "pctwm"): (151, 151),
        ("MP", "naive"): (0, 0),
        ("SB", "naive"): (0, 0),
        ("LB", "naive"): (0, 0),
    }

    @pytest.mark.parametrize("key,sched", sorted(GOLDEN),
                             ids=lambda v: str(v))
    def test_golden_weak_counts(self, key, sched):
        factory = _pctwm if sched == "pctwm" else _naive
        report = coverage_campaign(ALL_LITMUS[key], factory,
                                   trials=200, base_seed=7)
        assert (report.weak_reads, report.weak_trials) \
            == self.GOLDEN[(key, sched)]

    def test_single_weak_mp_run(self):
        result = run_once(ALL_LITMUS["MP"](), _pctwm(0), max_steps=2000)
        assert weak_read_count(result.graph) == 1


class TestBehaviourShape:
    """Golden counts for the rf/mo shape abstraction on MP/SB/LB."""

    GOLDEN = {
        # (litmus, scheduler): (distinct signatures, distinct shapes).
        ("MP", "pctwm"): (3, 3),
        ("SB", "pctwm"): (4, 4),
        ("LB", "pctwm"): (3, 3),
        ("MP", "naive"): (2, 2),
        ("SB", "naive"): (3, 3),
        ("LB", "naive"): (3, 3),
    }

    @pytest.mark.parametrize("key,sched", sorted(GOLDEN),
                             ids=lambda v: str(v))
    def test_golden_shape_counts(self, key, sched):
        factory = _pctwm if sched == "pctwm" else _naive
        report = coverage_campaign(ALL_LITMUS[key], factory,
                                   trials=200, base_seed=7)
        assert (report.distinct, report.distinct_shapes) \
            == self.GOLDEN[(key, sched)]

    def test_mp_weak_vs_strong_shapes_differ(self):
        # Seed 0 reads DATA from init (stale); seed 3 reads FLAG from
        # init (strong path) — structurally different rf shapes.
        weak = run_once(ALL_LITMUS["MP"](), _pctwm(0), max_steps=2000)
        strong = run_once(ALL_LITMUS["MP"](), _pctwm(3), max_steps=2000)
        weak_rf, weak_mo = behaviour_shape(weak.graph)
        strong_rf, strong_mo = behaviour_shape(strong.graph)
        assert weak_rf == frozenset({(0, 1, "FLAG"), (-1, 1, "DATA")})
        assert strong_rf == frozenset({(-1, 1, "FLAG")})
        # Same writes happen either way: the mo component agrees.
        assert weak_mo == strong_mo == (("DATA", (0,)), ("FLAG", (0,)))

    def test_shape_accumulators_dedupe_across_campaigns(self):
        seen, shapes = set(), set()
        first = coverage_campaign(ALL_LITMUS["SB"], _pctwm, trials=100,
                                  base_seed=7, seen=seen, shapes=shapes)
        again = coverage_campaign(ALL_LITMUS["SB"], _pctwm, trials=100,
                                  base_seed=7, seen=seen, shapes=shapes)
        assert first.distinct > 0
        # `distinct` is cumulative over the shared accumulator, and
        # identical seeds revisit only known behaviours — so the second
        # campaign reports exactly the first's totals.
        assert again.distinct == first.distinct == len(seen)
        assert again.distinct_shapes == first.distinct_shapes == len(shapes)
