"""Property tests for the seeded program generator (repro.fuzz.generator)."""

import json
import pickle

import pytest

from repro.core import NaiveRandomScheduler
from repro.fuzz import (
    FuzzConfig,
    build_plan_program,
    expected_final_memory,
    fuzz_program,
    generate_spec,
    plan_is_determinate,
    plan_program,
    plan_spec,
    plan_stats,
    plan_step_bound,
)
from repro.harness.seeding import derive_trial_seed
from repro.memory.model import resolve_model
from repro.workloads import ProgramSpec

SEEDS = [derive_trial_seed(0xF00D, i) for i in range(60)]

CONFIGS = [
    FuzzConfig(),
    FuzzConfig(profile="determinate"),
    FuzzConfig(allow_nonatomic=True, oracle="always"),
    FuzzConfig(max_threads=2, max_ops=3, max_locations=2,
               orders=("rlx",), oracle="off"),
    FuzzConfig(min_threads=3, max_threads=4, min_ops=4, max_ops=8,
               max_locations=6, orders=("rlx", "sc")),
]


def canonical(plan: dict) -> bytes:
    return json.dumps(plan, sort_keys=True).encode()


class TestDeterminism:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.profile +
                             ("-na" if c.allow_nonatomic else "") +
                             f"-t{c.max_threads}o{c.max_ops}")
    def test_same_seed_byte_identical_plan(self, config):
        for seed in SEEDS[:20]:
            assert canonical(plan_program(seed, config)) \
                == canonical(plan_program(seed, config))

    def test_same_seed_byte_identical_spec(self):
        for seed in SEEDS[:20]:
            a, b = generate_spec(seed), generate_spec(seed)
            assert a == b
            assert pickle.dumps(a) == pickle.dumps(b)
            assert json.dumps(a.params, sort_keys=True) \
                == json.dumps(b.params, sort_keys=True)

    def test_distinct_seeds_vary(self):
        plans = {canonical(plan_program(seed)) for seed in SEEDS}
        # 64-bit seeds; near-total diversity expected over 60 draws.
        assert len(plans) >= len(SEEDS) - 2


class TestBounds:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.profile +
                             f"-t{c.max_threads}o{c.max_ops}l{c.max_locations}")
    def test_bounding_knobs_respected(self, config):
        for seed in SEEDS:
            stats = plan_stats(plan_program(seed, config))
            assert config.min_threads <= stats["threads"] <= config.max_threads
            assert stats["max_thread_ops"] <= config.max_ops
            assert 1 <= stats["locations"] <= config.max_locations
            assert stats["ops"] >= stats["threads"]  # no empty bodies

    def test_order_pool_respected(self):
        config = FuzzConfig(orders=("rlx",), oracle="always")
        order_slots = {"store": [3], "load": [2], "add": [3], "xchg": [3],
                       "cas": [4, 5], "casloop": [3],
                       "spin": [3], "mp_check": [4, 5]}
        for seed in SEEDS[:30]:
            plan = plan_program(seed, config)
            for body in plan["threads"]:
                for ins in body:
                    if ins[0] == "fence":
                        # Relaxed fences are not legal C11; the generator
                        # falls back to sc when the pool is empty.
                        assert ins[1] == "sc", ins
                        continue
                    for slot in order_slots.get(ins[0], []):
                        assert ins[slot] == "rlx", ins


class TestTermination:
    @pytest.mark.parametrize("model", ["c11", "tso"])
    @pytest.mark.parametrize("config", CONFIGS[:3],
                             ids=["mixed", "determinate", "nonatomic"])
    def test_always_terminates_within_step_bound(self, model, config):
        backend = resolve_model(model)
        for seed in SEEDS[:25]:
            plan = plan_program(seed, config)
            program = build_plan_program(plan)
            bound = plan_step_bound(plan)
            for j in range(2):
                result = backend.run_once(
                    program, NaiveRandomScheduler(
                        seed=derive_trial_seed(seed, j)),
                    max_steps=bound)
                assert not result.limit_exceeded, (model, seed, j)
                assert not result.timed_out, (model, seed, j)


class TestRoundTrips:
    def test_plan_survives_json_round_trip(self):
        for seed in SEEDS[:20]:
            plan = plan_program(seed)
            again = json.loads(json.dumps(plan))
            assert canonical(again) == canonical(plan)
            assert build_plan_program(again).thread_count \
                == build_plan_program(plan).thread_count

    def test_spec_survives_pickle_round_trip(self):
        for seed in SEEDS[:10]:
            spec = generate_spec(seed)
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert canonical(plan_program(clone.params["gen_seed"])) \
                == canonical(plan_program(seed))

    def test_registry_builds_fuzz_kind_from_gen_seed(self):
        spec = ProgramSpec("anything", "fuzz", {"gen_seed": SEEDS[0]})
        program = spec.build()
        assert program.thread_count >= 2

    def test_registry_builds_fuzz_kind_from_plan(self):
        plan = plan_program(SEEDS[1])
        spec = plan_spec(json.loads(json.dumps(plan)))
        assert spec.kind == "fuzz"
        assert spec.build().name == plan["name"]

    def test_spec_json_round_trip_via_params(self):
        spec = generate_spec(SEEDS[2])
        params = json.loads(json.dumps(spec.params))
        clone = ProgramSpec(spec.name, "fuzz", params)
        assert clone.build().name == spec.build().name


class TestDeterminateProfile:
    def test_structurally_determinate(self):
        config = FuzzConfig(profile="determinate")
        for seed in SEEDS[:30]:
            assert plan_is_determinate(plan_program(seed, config))

    def test_mixed_profile_usually_not_determinate(self):
        config = FuzzConfig(oracle="always")
        verdicts = [plan_is_determinate(plan_program(seed, config))
                    for seed in SEEDS[:30]]
        assert not all(verdicts)

    @pytest.mark.parametrize("model", ["c11", "tso"])
    def test_final_memory_matches_expectation(self, model):
        backend = resolve_model(model)
        config = FuzzConfig(profile="determinate")
        for seed in SEEDS[:15]:
            plan = plan_program(seed, config)
            expected = expected_final_memory(plan)
            program = build_plan_program(plan)
            result = backend.run_once(
                program, NaiveRandomScheduler(seed=seed),
                max_steps=plan_step_bound(plan))
            assert not result.bug_found
            final = {loc: result.graph.mo_max(loc).wval
                     for loc in result.graph.locations()}
            for loc, value in final.items():
                assert expected[loc] == value, (model, seed, loc)


class TestValidation:
    def test_config_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            FuzzConfig(min_threads=1)
        with pytest.raises(ValueError):
            FuzzConfig(min_ops=0)
        with pytest.raises(ValueError):
            FuzzConfig(orders=("totally-ordered",))
        with pytest.raises(ValueError):
            FuzzConfig(profile="chaotic")

    def test_factory_rejects_ambiguous_params(self):
        plan = plan_program(SEEDS[0])
        with pytest.raises(ValueError):
            fuzz_program(gen_seed=1, plan=plan)
        with pytest.raises(ValueError):
            fuzz_program()

    def test_build_rejects_unknown_plan_version(self):
        plan = dict(plan_program(SEEDS[0]), version=999)
        with pytest.raises(ValueError):
            build_plan_program(plan)

    def test_config_round_trips_through_params(self):
        config = FuzzConfig(max_threads=4, orders=("rlx", "sc"),
                            allow_nonatomic=True)
        assert FuzzConfig.from_params(config.to_params()) == config
        assert json.loads(json.dumps(config.to_params())) \
            == config.to_params()
