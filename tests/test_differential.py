"""Differential testing: random samplers vs the exhaustive explorer.

For randomized small programs, every behaviour any randomized scheduler
produces must belong to the exhaustively enumerated set — the samplers
sample *from* the space, never outside it.  This cross-checks the
engine's visible-write logic, the schedulers' choices, and the explorer
itself against each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
    PPCTScheduler,
)
from repro.harness.coverage import execution_signature
from repro.memory.events import ACQ, REL, RLX
from repro.modelcheck import explore
from repro.runtime import Program, run_once

LOCS = ("X", "Y")

# Straight-line programs only (no RMW retries): keeps the exhaustive
# space small and the signature comparison exact.
op_spec = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(LOCS),
              st.integers(1, 2), st.sampled_from((RLX, REL))),
    st.tuples(st.just("load"), st.sampled_from(LOCS),
              st.sampled_from((RLX, ACQ))),
)

program_spec = st.lists(
    st.lists(op_spec, min_size=1, max_size=3), min_size=2, max_size=2,
)

SAMPLERS = (
    lambda seed: NaiveRandomScheduler(seed=seed),
    lambda seed: C11TesterScheduler(seed=seed),
    lambda seed: PCTScheduler(2, 8, seed=seed),
    lambda seed: PCTWMScheduler(1, 4, 2, seed=seed),
    lambda seed: POSScheduler(seed=seed),
    lambda seed: PPCTScheduler(2, 8, seed=seed),
)


def build(spec) -> Program:
    p = Program("diff")
    handles = {loc: p.atomic(loc, 0) for loc in LOCS}

    def make_body(ops):
        def body():
            for op in ops:
                if op[0] == "store":
                    yield handles[op[1]].store(op[2], op[3])
                else:
                    yield handles[op[1]].load(op[2])

        return body

    for ops in spec:
        p.add_thread(make_body(ops))
    return p


@settings(max_examples=25, deadline=None)
@given(program_spec, st.integers(0, 200))
def test_sampled_behaviours_within_exhaustive_set(spec, seed):
    exhaustive = explore(lambda: build(spec), max_executions=5000)
    assert not exhaustive.truncated
    for make in SAMPLERS:
        result = run_once(build(spec), make(seed), max_steps=500)
        signature = execution_signature(result.graph)
        assert signature in exhaustive.signatures, (
            f"{make(seed).name} produced a behaviour outside the "
            f"exhaustive set"
        )


@settings(max_examples=15, deadline=None)
@given(program_spec)
def test_unrestricted_samplers_cover_the_space_eventually(spec):
    """C11Tester over many seeds reaches every exhaustively reachable
    behaviour of these tiny programs."""
    exhaustive = explore(lambda: build(spec), max_executions=5000)
    if len(exhaustive.signatures) > 12:
        return  # keep runtime bounded; large spaces need too many seeds
    sampled = set()
    for seed in range(600):
        result = run_once(build(spec), C11TesterScheduler(seed=seed),
                          max_steps=500)
        sampled.add(execution_signature(result.graph))
        if sampled == exhaustive.signatures:
            return
    assert sampled == exhaustive.signatures
