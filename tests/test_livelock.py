"""Unit tests for spin tracking and the livelock heuristic."""

from repro.core import PCTWMScheduler
from repro.memory.events import RLX
from repro.runtime import Program, run_once
from repro.runtime.livelock import SpinTracker


class TestSpinTracker:
    def test_below_threshold_not_spinning(self):
        tracker = SpinTracker(threshold=3)
        site = (0, 10)
        for _ in range(3):
            assert not tracker.note(site, 0)
        assert not tracker.is_spinning(site)

    def test_exceeding_threshold_flags(self):
        tracker = SpinTracker(threshold=3)
        site = (0, 10)
        for _ in range(3):
            tracker.note(site, 0)
        assert tracker.note(site, 0)
        assert tracker.is_spinning(site)

    def test_value_change_resets(self):
        tracker = SpinTracker(threshold=2)
        site = (0, 10)
        tracker.note(site, 0)
        tracker.note(site, 0)
        tracker.note(site, 1)  # observed progress
        assert not tracker.is_spinning(site)

    def test_sites_are_independent(self):
        tracker = SpinTracker(threshold=1)
        tracker.note((0, 1), 0)
        tracker.note((0, 1), 0)
        assert tracker.is_spinning((0, 1))
        assert not tracker.is_spinning((0, 2))

    def test_reset(self):
        tracker = SpinTracker(threshold=1)
        site = (0, 1)
        tracker.note(site, 0)
        tracker.note(site, 0)
        tracker.reset(site)
        assert not tracker.is_spinning(site)

    def test_invalid_threshold(self):
        import pytest
        with pytest.raises(ValueError):
            SpinTracker(threshold=0)


class TestLivelockHeuristicEndToEnd:
    """Section 6.2: without the heuristic a wait loop starves under PCTWM."""

    def make_wait_program(self, spins: int) -> Program:
        p = Program("waitloop")
        flag = p.atomic("FLAG", 0)

        def setter():
            yield flag.store(1, RLX)

        def waiter():
            for _ in range(spins):
                f = yield flag.load(RLX)
                if f == 1:
                    return "released"
            return "starved"

        p.add_thread(setter)
        p.add_thread(waiter)
        return p

    def test_heuristic_releases_spinning_thread(self):
        """With d=0 the waiter's reads are all local (stale 0) until the
        spin heuristic promotes them to global reads."""
        released = 0
        for seed in range(40):
            result = run_once(self.make_wait_program(spins=60),
                              PCTWMScheduler(0, 5, 1, seed=seed),
                              spin_threshold=5)
            if result.thread_results["waiter"] == "released":
                released += 1
        assert released == 40

    def test_without_heuristic_waiter_starves(self):
        """A spin bound below the threshold starves at d=0 (by design —
        the benchmark programs rely on this to gate their bug depth)."""
        for seed in range(20):
            result = run_once(self.make_wait_program(spins=4),
                              PCTWMScheduler(0, 5, 1, seed=seed),
                              spin_threshold=50)
            assert result.thread_results["waiter"] == "starved"

    def test_heuristic_brings_no_false_bug(self):
        p = self.make_wait_program(spins=60)
        result = run_once(p, PCTWMScheduler(0, 5, 1, seed=1),
                          spin_threshold=5)
        assert not result.bug_found
