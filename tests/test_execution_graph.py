"""Unit tests for the execution graph and its derived relations."""

import pytest

from repro.memory.events import ACQ, REL, RLX, SC as SEQ, INIT_TID
from repro.memory.execution import ExecutionGraph


def graph_with_init(*locs):
    g = ExecutionGraph()
    for loc in locs:
        g.add_init_write(loc, 0)
    return g


class TestConstruction:
    def test_init_write_is_mo_origin(self):
        g = graph_with_init("X")
        init = g.writes_by_loc["X"][0]
        assert init.tid == INIT_TID
        assert init.mo_index == 0
        assert init.label.wval == 0

    def test_writes_append_in_mo(self):
        g = graph_with_init("X")
        w1 = g.add_write(0, "X", 1, RLX)
        w2 = g.add_write(1, "X", 2, RLX)
        assert [w.mo_index for w in g.writes_by_loc["X"]] == [0, 1, 2]
        assert g.mo_max("X") is w2
        assert w1.mo_index < w2.mo_index

    def test_mo_is_per_location(self):
        g = graph_with_init("X", "Y")
        wx = g.add_write(0, "X", 1, RLX)
        wy = g.add_write(0, "Y", 1, RLX)
        assert wx.mo_index == 1 and wy.mo_index == 1

    def test_read_records_rf_and_value(self):
        g = graph_with_init("X")
        w = g.add_write(0, "X", 7, RLX)
        r = g.add_read(1, "X", w, RLX)
        assert r.reads_from is w
        assert r.label.rval == 7

    def test_read_rejects_wrong_location_source(self):
        g = graph_with_init("X", "Y")
        w = g.add_write(0, "X", 1, RLX)
        with pytest.raises(ValueError):
            g.add_read(1, "Y", w, RLX)

    def test_rmw_reads_and_writes(self):
        g = graph_with_init("X")
        u = g.add_rmw(0, "X", g.mo_max("X"), 5, RLX)
        assert u.is_read and u.is_write and u.is_rmw
        assert u.label.rval == 0 and u.label.wval == 5
        assert g.mo_max("X") is u

    def test_po_index_per_thread(self):
        g = graph_with_init("X")
        a = g.add_write(0, "X", 1, RLX)
        b = g.add_write(1, "X", 2, RLX)
        c = g.add_write(0, "X", 3, RLX)
        assert (a.po_index, b.po_index, c.po_index) == (0, 0, 1)

    def test_mo_max_unknown_location(self):
        g = graph_with_init("X")
        with pytest.raises(KeyError):
            g.mo_max("Z")

    def test_sc_order_appends(self):
        g = graph_with_init("X")
        a = g.add_write(0, "X", 1, SEQ)
        f = g.add_fence(1, SEQ)
        r = g.add_read(1, "X", a, SEQ)
        assert [e.sc_index for e in (a, f, r)] == [0, 1, 2]
        assert g.last_sc() is r
        assert g.last_sc(before=r) is f
        assert g.last_sc(before=a) is None


class TestReleaseSource:
    def test_release_write_is_its_own_source(self):
        g = graph_with_init("X")
        w = g.add_write(0, "X", 1, REL)
        assert g.release_source(w) is w

    def test_relaxed_write_without_fence_has_no_source(self):
        g = graph_with_init("X")
        w = g.add_write(0, "X", 1, RLX)
        assert g.release_source(w) is None

    def test_release_fence_before_relaxed_write(self):
        g = graph_with_init("X")
        f = g.add_fence(0, REL)
        w = g.add_write(0, "X", 1, RLX)
        assert g.release_source(w) is f

    def test_fence_in_other_thread_does_not_count(self):
        g = graph_with_init("X")
        g.add_fence(1, REL)
        w = g.add_write(0, "X", 1, RLX)
        assert g.release_source(w) is None

    def test_rmw_chain_reaches_release_write(self):
        # w(rel) <-rf- u1(rlx) <-rf- u2(rlx): release sequence via rf+.
        g = graph_with_init("X")
        w = g.add_write(0, "X", 1, REL)
        u1 = g.add_rmw(1, "X", w, 2, RLX)
        u2 = g.add_rmw(2, "X", u1, 3, RLX)
        assert g.release_source(u2) is w

    def test_rmw_chain_without_release_is_none(self):
        g = graph_with_init("X")
        w = g.add_write(0, "X", 1, RLX)
        u = g.add_rmw(1, "X", w, 2, RLX)
        assert g.release_source(u) is None

    def test_init_write_has_no_source(self):
        g = graph_with_init("X")
        init = g.writes_by_loc["X"][0]
        assert g.release_source(init) is None


class TestDerivedRelations:
    def build_mp1(self):
        """The paper's MP1 execution (Figure 1)."""
        g = graph_with_init("X", "Y")
        e1 = g.add_write(0, "X", 1, RLX)
        e2 = g.add_fence(0, REL)
        e3 = g.add_write(0, "Y", 1, RLX)
        e4 = g.add_read(1, "Y", e3, RLX)
        e5 = g.add_fence(1, ACQ)
        e6 = g.add_read(1, "X", e1, RLX)
        return g, (e1, e2, e3, e4, e5, e6)

    def test_po_within_threads_only(self):
        g, (e1, e2, e3, e4, e5, e6) = self.build_mp1()
        po = g.po()
        assert po(e1, e3) and po(e4, e6)
        assert not po(e3, e4)
        assert not po(e4, e1)

    def test_rf_edges(self):
        g, (e1, _e2, e3, e4, _e5, e6) = self.build_mp1()
        rf = g.rf()
        assert rf(e3, e4) and rf(e1, e6)

    def test_fr_relates_read_to_later_writes(self):
        g = graph_with_init("X")
        w1 = g.add_write(0, "X", 1, RLX)
        r = g.add_read(1, "X", w1, RLX)
        w2 = g.add_write(0, "X", 2, RLX)
        fr = g.fr()
        assert fr(r, w2)
        assert not fr(r, w1)

    def test_sw_fence_to_fence(self):
        # Frel; po; W --rf--> R; po; Facq forms sw(Frel, Facq).
        g, (e1, e2, e3, e4, e5, e6) = self.build_mp1()
        sw = g.sw()
        assert sw(e2, e5)
        assert not sw(e3, e4)  # relaxed rf alone does not synchronize

    def test_sw_release_write_to_acquire_read(self):
        g = graph_with_init("X")
        w = g.add_write(0, "X", 1, REL)
        r = g.add_read(1, "X", w, ACQ)
        assert g.sw()(w, r)

    def test_hb_through_sw(self):
        g, (e1, e2, e3, e4, e5, e6) = self.build_mp1()
        hb = g.hb()
        assert hb(e1, e6)  # e1 -po- e2 -sw- e5 -po- e6

    def test_com_excludes_po_and_init(self):
        g, (e1, _e2, e3, e4, _e5, e6) = self.build_mp1()
        com = g.com()
        assert com(e3, e4) and com(e1, e6)
        assert all(a.tid != b.tid for a, b in com.edges())
        assert all(not a.is_init and not b.is_init for a, b in com.edges())

    def test_thread_ids_exclude_init(self):
        g, _ = self.build_mp1()
        assert set(g.thread_ids()) == {0, 1}

    def test_size_counts_all_events(self):
        g, _ = self.build_mp1()
        assert g.size == 2 + 6  # 2 init writes + 6 program events
