"""Unit tests for happens-before data-race detection."""

from repro.memory.events import ACQ, EventKind, Label, NA, REL, RLX, Event
from repro.memory.races import DataRace, RaceDetector
from repro import ACQ as ACQ2  # noqa: F401  (public re-export sanity)


def event(uid, tid, kind, loc="X", order=RLX, clock=()):
    e = Event(uid=uid, tid=tid, label=Label(kind, order, loc))
    e.clock = clock
    return e


def na_write(uid, tid, clock, loc="X"):
    return event(uid, tid, EventKind.WRITE, loc, NA, clock)


def na_read(uid, tid, clock, loc="X"):
    return event(uid, tid, EventKind.READ, loc, NA, clock)


class TestRaceDetection:
    def test_concurrent_na_writes_race(self):
        det = RaceDetector()
        assert det.on_access(na_write(1, 0, (1, 0))) is None
        race = det.on_access(na_write(2, 1, (0, 1)))
        assert isinstance(race, DataRace)
        assert race.loc == "X"
        assert det.racy

    def test_write_read_race(self):
        det = RaceDetector()
        det.on_access(na_write(1, 0, (1, 0)))
        assert det.on_access(na_read(2, 1, (0, 1))) is not None

    def test_read_read_never_races(self):
        det = RaceDetector()
        det.on_access(na_read(1, 0, (1, 0)))
        assert det.on_access(na_read(2, 1, (0, 1))) is None
        assert not det.racy

    def test_happens_before_orders_accesses(self):
        det = RaceDetector()
        det.on_access(na_write(1, 0, (1, 0)))
        # Thread 1 joined thread 0's clock (e.g. release/acquire sync).
        assert det.on_access(na_write(2, 1, (1, 1))) is None
        assert not det.racy

    def test_same_thread_never_races(self):
        det = RaceDetector()
        det.on_access(na_write(1, 0, (1, 0)))
        assert det.on_access(na_write(2, 0, (2, 0))) is None

    def test_atomic_atomic_never_races(self):
        det = RaceDetector()
        det.on_access(event(1, 0, EventKind.WRITE, order=RLX, clock=(1, 0)))
        assert det.on_access(
            event(2, 1, EventKind.WRITE, order=RLX, clock=(0, 1))
        ) is None

    def test_atomic_vs_na_races(self):
        det = RaceDetector()
        det.on_access(event(1, 0, EventKind.WRITE, order=REL, clock=(1, 0)))
        assert det.on_access(na_write(2, 1, (0, 1))) is not None

    def test_different_locations_never_race(self):
        det = RaceDetector()
        det.on_access(na_write(1, 0, (1, 0), loc="X"))
        assert det.on_access(na_write(2, 1, (0, 1), loc="Y")) is None

    def test_fences_ignored(self):
        det = RaceDetector()
        fence = event(1, 0, EventKind.FENCE, loc=None, order=ACQ,
                      clock=(1, 0))
        assert det.on_access(fence) is None

    def test_races_accumulate(self):
        det = RaceDetector()
        det.on_access(na_write(1, 0, (1, 0)))
        det.on_access(na_write(2, 1, (0, 1)))
        det.on_access(na_write(3, 2, (0, 0, 1)))
        assert len(det.races) >= 2

    def test_race_reports_execution_order(self):
        det = RaceDetector()
        first = na_write(1, 0, (1, 0))
        second = na_write(2, 1, (0, 1))
        det.on_access(first)
        race = det.on_access(second)
        assert race.first is first and race.second is second
