"""Unit tests for ThreadState and Program."""

import pytest

from repro.memory.events import RLX
from repro.runtime.api import Atomic
from repro.runtime.errors import ProgramDefinitionError, ReproError
from repro.runtime.program import Program
from repro.runtime.thread import ThreadState


def make_thread(body, tid=0, name="t"):
    state = ThreadState(tid, name, body())
    state.prime()
    return state


class TestThreadState:
    def test_prime_exposes_first_op(self):
        x = Atomic("X")

        def body():
            yield x.store(1, RLX)
            yield x.load(RLX)

        t = make_thread(body)
        assert t.pending is not None and not t.finished

    def test_advance_delivers_result(self):
        x = Atomic("X")
        seen = []

        def body():
            value = yield x.load(RLX)
            seen.append(value)

        t = make_thread(body)
        t.advance(42)
        assert seen == [42]
        assert t.finished

    def test_return_value_captured(self):
        x = Atomic("X")

        def body():
            yield x.load(RLX)
            return "done"

        t = make_thread(body)
        t.advance(0)
        assert t.finished and t.result == "done"

    def test_empty_body_finishes_immediately(self):
        def body():
            return 5
            yield  # pragma: no cover - makes it a generator

        t = make_thread(body)
        assert t.finished and t.result == 5

    def test_yielding_non_op_raises(self):
        def body():
            yield "not an op"

        state = ThreadState(0, "bad", body())
        with pytest.raises(ReproError, match="yielded"):
            state.prime()

    def test_advance_after_finish_raises(self):
        def body():
            return None
            yield  # pragma: no cover

        t = make_thread(body)
        with pytest.raises(ReproError):
            t.advance(None)

    def test_site_key_distinguishes_program_points(self):
        x = Atomic("X")

        def body():
            yield x.load(RLX)   # site A
            yield x.load(RLX)   # site B

        t = make_thread(body)
        site_a = t.site_key
        t.advance(0)
        site_b = t.site_key
        assert site_a != site_b

    def test_site_key_stable_across_loop_iterations(self):
        x = Atomic("X")

        def body():
            for _ in range(3):
                yield x.load(RLX)

        t = make_thread(body)
        first = t.site_key
        t.advance(0)
        assert t.site_key == first

    def test_events_executed_counter(self):
        x = Atomic("X")

        def body():
            yield x.load(RLX)
            yield x.load(RLX)

        t = make_thread(body)
        t.advance(0)
        t.advance(0)
        assert t.events_executed == 2


class TestProgram:
    def test_atomic_registers_location(self):
        p = Program("p")
        p.atomic("X", 42)
        assert p.locations == {"X": 42}

    def test_duplicate_location_rejected(self):
        p = Program("p")
        p.atomic("X")
        with pytest.raises(ProgramDefinitionError):
            p.non_atomic("X")

    def test_thread_decorator_and_names(self):
        p = Program("p")
        x = p.atomic("X")

        @p.thread
        def worker():
            yield x.load(RLX)

        assert p.thread_names == ["worker"]

    def test_duplicate_thread_names_uniquified(self):
        p = Program("p")
        x = p.atomic("X")

        def worker():
            yield x.load(RLX)

        p.add_thread(worker)
        p.add_thread(worker)
        names = p.thread_names
        assert len(set(names)) == 2

    def test_add_thread_with_args(self):
        p = Program("p")
        x = p.atomic("X")
        got = []

        def worker(value, flag=False):
            got.append((value, flag))
            yield x.load(RLX)

        p.add_thread(worker, 7, flag=True)
        p.instantiate()
        assert got == [(7, True)]

    def test_instantiate_requires_threads(self):
        with pytest.raises(ProgramDefinitionError):
            Program("empty").instantiate()

    def test_instantiate_rejects_non_generator(self):
        p = Program("p")
        p.atomic("X")
        p.add_thread(lambda: 42, name="notgen")
        with pytest.raises(ProgramDefinitionError):
            p.instantiate()

    def test_instantiate_returns_fresh_states(self):
        p = Program("p")
        x = p.atomic("X")

        def worker():
            yield x.load(RLX)

        p.add_thread(worker)
        first = p.instantiate()
        second = p.instantiate()
        assert first[0] is not second[0]
        assert first[0].tid == second[0].tid == 0

    def test_final_checks_accumulate(self):
        p = Program("p")
        p.add_final_check(lambda r: None)
        p.add_final_check(lambda r: None)
        assert len(p.final_checks) == 2

    def test_races_are_bugs_default(self):
        assert Program("p").races_are_bugs
