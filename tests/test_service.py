"""Campaign service: job specs, durable queue, daemon, HTTP API.

The service contract: a job submitted over HTTP runs through the exact
same campaign engine as ``python -m repro campaign`` and produces
bit-identical aggregates; every job journals its trials so daemon
death, drain, or cancel always leaves a resumable state directory.
"""

import json
import os
import threading
import time
import urllib.request

import pytest

from repro.service import (
    CampaignDaemon,
    Job,
    JobQueue,
    JobSpec,
    ServiceClient,
    ServiceError,
    TokenBucket,
    result_summary,
    run_job,
)
from repro.service.api import make_server
from repro.service.queue import JOB_STATUSES


BIT_FIELDS = ("hits", "inconclusive", "total_steps", "total_events")


def spec_dict(**overrides):
    spec = {"benchmark": "dekker", "scheduler": "naive", "trials": 16,
            "seed": 3, "jobs": 1}
    spec.update(overrides)
    return spec


def bit_key(summary):
    return tuple(summary[field] for field in BIT_FIELDS)


# -- job specs -----------------------------------------------------------------


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict(spec_dict())
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_dict(spec_dict(colour="red"))

    def test_benchmark_required(self):
        with pytest.raises(ValueError, match="benchmark"):
            JobSpec.from_dict({"trials": 5})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_dict(["dekker"])

    @pytest.mark.parametrize("overrides,fragment", [
        ({"scheduler": "quantum"}, "unknown scheduler"),
        ({"benchmark": "nonesuch"}, "unknown benchmark"),
        ({"model": "sc"}, "unknown model"),
        ({"trials": 0}, "trials"),
        ({"seed": -1}, "seed"),
        ({"jobs": 0}, "jobs"),
        ({"max_steps": 0}, "max_steps"),
        ({"max_retries": -1}, "max_retries"),
        ({"trial_timeout_s": 0.00001}, "quantum"),
        ({"hang_timeout_s": 0}, "hang_timeout_s"),
        ({"memory_limit_mb": -4.0}, "memory_limit_mb"),
        ({"trial_timeout_s": 5.0, "hang_timeout_s": 5.0}, "must exceed"),
        ({"sanitize": "loud"}, "sanitize"),
        ({"record_mode": "sometimes"}, "record mode"),
    ])
    def test_validate_rejects(self, overrides, fragment):
        spec = JobSpec.from_dict(spec_dict(**overrides))
        with pytest.raises(ValueError, match=fragment):
            spec.validate()

    def test_valid_spec_passes(self):
        JobSpec.from_dict(spec_dict(
            trial_timeout_s=5.0, hang_timeout_s=30.0,
            memory_limit_mb=1024.0, model="tso")).validate()


# -- token bucket --------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_throttle_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.now += 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=2, clock=clock)
        clock.now += 3600.0
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0)


# -- durable queue -------------------------------------------------------------


class TestJobQueue:
    def test_submit_assigns_serial_ids_and_persists(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        first = queue.submit(spec_dict())
        second = queue.submit(spec_dict(seed=4))
        assert (first.id, second.id) == ("job-000001", "job-000002")
        on_disk = json.load(open(
            os.path.join(queue.jobs_dir, f"{first.id}.json")))
        assert on_disk["status"] == "queued"
        assert on_disk["spec"]["seed"] == 3

    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        first = queue.submit(spec_dict())
        queue.submit(spec_dict())
        claimed = queue.claim_next()
        assert claimed.id == first.id
        assert claimed.status == "running"
        assert claimed.attempts == 1

    def test_claim_empty_queue(self, tmp_path):
        assert JobQueue(str(tmp_path)).claim_next() is None

    def test_reload_marks_running_as_interrupted(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        running = queue.submit(spec_dict())
        queue.submit(spec_dict())
        queue.claim_next()
        assert running.status == "running"

        reloaded = JobQueue(str(tmp_path))
        assert reloaded.get(running.id).status == "interrupted"
        # Interrupted work is claimed before anything merely queued,
        # and new submissions keep the serial sequence moving.
        assert reloaded.claim_next().id == running.id
        assert reloaded.submit(spec_dict()).id == "job-000003"

    def test_cancel_queued_is_immediate(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(spec_dict())
        cancelled = queue.request_cancel(job.id)
        assert cancelled.status == "cancelled"
        assert cancelled.finished_at is not None
        assert queue.claim_next() is None

    def test_cancel_running_sets_event_only(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(spec_dict())
        queue.claim_next()
        queue.request_cancel(job.id)
        assert job.status == "running"
        assert job.cancel_event.is_set()

    def test_cancel_unknown_job(self, tmp_path):
        assert JobQueue(str(tmp_path)).request_cancel("job-9") is None

    def test_counts_and_has_active(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        assert not queue.has_active()
        queue.submit(spec_dict())
        counts = queue.counts()
        assert counts["queued"] == 1
        assert set(counts) == set(JOB_STATUSES)
        assert queue.has_active()

    def test_torn_job_file_is_skipped(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        queue.submit(spec_dict())
        with open(os.path.join(queue.jobs_dir, "job-000999.json"),
                  "w") as fh:
            fh.write("{torn")
        reloaded = JobQueue(str(tmp_path))
        assert [j.id for j in reloaded.list_jobs()] == ["job-000001"]

    def test_journal_path_lives_in_state_dir(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        path = queue.journal_path("job-000001")
        assert path.startswith(str(tmp_path))
        assert path.endswith("job-000001.jsonl")

    def test_job_round_trip(self):
        job = Job(id="job-000007", spec=spec_dict(), status="done",
                  submitted_at=1.0, result={"hits": 3}, attempts=2)
        assert Job.from_dict(job.to_dict()).to_dict() == job.to_dict()


# -- daemon (direct, no socket) ------------------------------------------------


class TestDaemonDirect:
    def test_submit_validates(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path), quiet=True)
        with pytest.raises(ValueError, match="unknown benchmark"):
            daemon.submit(spec_dict(benchmark="nonesuch"))

    def test_submit_refused_while_draining(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path), quiet=True)
        daemon.drain()
        with pytest.raises(ValueError, match="draining"):
            daemon.submit(spec_dict())

    def test_process_one_empty_queue(self, tmp_path):
        assert CampaignDaemon(str(tmp_path),
                              quiet=True).process_one() is None

    def test_job_result_is_bit_identical_to_direct_run(self, tmp_path):
        reference = result_summary(run_job(JobSpec.from_dict(spec_dict())))

        daemon = CampaignDaemon(str(tmp_path), quiet=True)
        daemon.submit(spec_dict())
        finished = daemon.process_one()
        assert finished["status"] == "done"
        assert finished["finished_at"] is not None
        assert bit_key(finished["result"]) == bit_key(reference)
        assert finished["result"]["interrupted"] is False
        # The journal is the durable record of every trial.
        journal = daemon.queue.journal_path(finished["id"])
        assert sum(1 for line in open(journal)
                   if '"kind": "trial"' in line) == 16

    def test_cancelled_running_job_keeps_partial_result(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path), quiet=True)
        submitted = daemon.submit(spec_dict(trials=32))
        daemon.queue.get(submitted["id"]).cancel_event.set()
        finished = daemon.process_one()
        assert finished["status"] == "cancelled"
        assert finished["finished_at"] is not None
        assert finished["result"]["interrupted"] is True
        assert 0 < finished["result"]["completed"] < 32

    def test_invalid_spec_on_disk_fails_cleanly(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path), quiet=True)
        # Simulate a spec that passed an older validator: inject the
        # record directly, bypassing submit-time validation.
        job = daemon.queue.submit(spec_dict(benchmark="nonesuch"))
        assert job is not None
        finished = daemon.process_one()
        assert finished["status"] == "failed"
        assert "unknown benchmark" in finished["error"]

    def test_health_shape(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path), quiet=True)
        health = daemon.health()
        assert health["status"] == "ok"
        assert health["pid"] == os.getpid()
        assert health["current_job"] is None
        assert "watchdog" in health and "scans" in health["watchdog"]
        daemon.drain()
        assert daemon.health()["status"] == "draining"


class TestRestartRecovery:
    def test_daemon_restart_resumes_bit_identical(self, tmp_path):
        """Daemon dies mid-job (record left ``running``, journal partial)
        -> a fresh daemon re-queues it as interrupted, resumes from the
        journal, and the final result matches an uninterrupted run."""
        state = str(tmp_path / "state")
        spec = spec_dict(trials=32)
        reference = result_summary(run_job(JobSpec.from_dict(spec)))

        daemon1 = CampaignDaemon(state, quiet=True)
        daemon1.submit(spec)
        job = daemon1.queue.claim_next()

        def die_after_first_shard(progress):
            raise KeyboardInterrupt

        partial = run_job(JobSpec.from_dict(spec),
                          checkpoint=daemon1.queue.journal_path(job.id),
                          progress=die_after_first_shard)
        assert partial.interrupted
        assert 0 < partial.completed < 32
        # daemon1 "dies" here: the job record on disk still says running.

        daemon2 = CampaignDaemon(state, quiet=True)
        assert daemon2.queue.get(job.id).status == "interrupted"
        finished = daemon2.process_one()
        assert finished["id"] == job.id
        assert finished["status"] == "done"
        assert finished["result"]["resumed_trials"] == partial.completed
        assert bit_key(finished["result"]) == bit_key(reference)
        assert finished["attempts"] == 2


# -- HTTP API ------------------------------------------------------------------


def start_http(daemon):
    """Serve the API for ``daemon`` on an ephemeral port (no worker)."""
    server = make_server(daemon, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1}, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, thread, url


@pytest.fixture
def api(tmp_path):
    daemon = CampaignDaemon(str(tmp_path), quiet=True,
                            rate_per_s=1000.0, burst=1000)
    server, thread, url = start_http(daemon)
    yield daemon, ServiceClient(url, timeout_s=10.0)
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestHttpApi:
    def test_healthz(self, api):
        daemon, client = api
        health = client.health()
        assert health["status"] == "ok"
        assert health["pid"] == os.getpid()

    def test_submit_status_list(self, api):
        daemon, client = api
        job = client.submit(spec_dict())
        assert job["id"] == "job-000001"
        assert job["status"] == "queued"
        assert client.status(job["id"])["spec"]["benchmark"] == "dekker"
        assert [j["id"] for j in client.list_jobs()] == [job["id"]]

    def test_result_conflict_until_finished(self, api):
        daemon, client = api
        job = client.submit(spec_dict())
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.code == 409

        finished = daemon.process_one()
        assert finished["id"] == job["id"]
        result = client.result(job["id"])
        assert result["status"] == "done"
        assert bit_key(result["result"]) == bit_key(
            client.status(job["id"])["result"])

    def test_cancel_queued_over_http(self, api):
        daemon, client = api
        job = client.submit(spec_dict())
        assert client.cancel(job["id"])["status"] == "cancelled"
        assert daemon.process_one() is None

    def test_unknown_routes_404(self, api):
        daemon, client = api
        for call in (lambda: client.status("job-000404"),
                     lambda: client.result("job-000404"),
                     lambda: client.cancel("job-000404"),
                     lambda: client._request("GET", "/nope")):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.code == 404

    def test_invalid_spec_400(self, api):
        daemon, client = api
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(benchmark="nonesuch"))
        assert excinfo.value.code == 400
        assert "unknown benchmark" in excinfo.value.message

    def test_malformed_body_400(self, api):
        daemon, client = api
        request = urllib.request.Request(
            client.base_url + "/jobs", data=b"{torn",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_draining_503(self, api):
        daemon, client = api
        assert client.drain() == {"status": "draining"}
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict())
        assert excinfo.value.code == 503


class TestHttpRateLimit:
    def test_burst_exhaustion_yields_429(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path), quiet=True,
                                rate_per_s=0.001, burst=1)
        server, thread, url = start_http(daemon)
        try:
            client = ServiceClient(url, timeout_s=10.0)
            client.submit(spec_dict())
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec_dict())
            assert excinfo.value.code == 429
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestServeForever:
    def test_serve_submit_wait_result_shutdown(self, tmp_path):
        """The full loop: serve_forever in a thread, submit over HTTP,
        worker executes, client.wait() observes done, shutdown exits."""
        state = str(tmp_path / "state")
        daemon = CampaignDaemon(state, port=0, quiet=True,
                                rate_per_s=1000.0, burst=1000)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        endpoint = os.path.join(state, "endpoint.json")
        deadline = time.monotonic() + 15
        while not os.path.exists(endpoint):
            assert time.monotonic() < deadline, "daemon never bound"
            time.sleep(0.05)
        url = json.load(open(endpoint))["url"]
        client = ServiceClient(url, timeout_s=10.0)
        try:
            reference = result_summary(
                run_job(JobSpec.from_dict(spec_dict())))
            job = client.submit(spec_dict())
            finished = client.wait(job["id"], timeout_s=120, poll_s=0.1)
            assert finished["status"] == "done"
            assert bit_key(finished["result"]) == bit_key(reference)
        finally:
            daemon.request_shutdown()
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert not os.path.exists(endpoint)

    def test_drain_exits_serve_loop_keeping_queue(self, tmp_path):
        state = str(tmp_path / "state")
        daemon = CampaignDaemon(state, port=0, quiet=True)
        # Pre-drain before the worker starts: nothing runs, and the
        # serve loop exits as soon as the worker sees the drain flag.
        daemon.queue.submit(spec_dict())
        daemon.drain()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        # The queued job survived the drain, ready for the next daemon.
        assert JobQueue(state).get("job-000001").status == "queued"
