"""Unit tests for the C11 consistency axioms (Section 4).

Two directions: hand-built consistent graphs pass every check, and
hand-built *violating* graphs are caught by the right axiom.  Generated
executions are audited separately in test_engine_properties.py.
"""

from repro.memory.axioms import (
    check_atomicity,
    check_consistency,
    check_irr_mo_sc,
    check_read_coherence,
    check_rf_wellformed,
    check_sc_acyclic,
    check_write_coherence,
    is_consistent,
)
from repro.memory.events import (
    ACQ,
    Event,
    EventKind,
    Label,
    REL,
    RLX,
    SC as SEQ,
)
from repro.memory.execution import ExecutionGraph


def fresh(*locs):
    g = ExecutionGraph()
    for loc in locs:
        g.add_init_write(loc, 0)
    return g


def stamp(events_with_clocks):
    for event, clock in events_with_clocks:
        event.clock = clock


class TestConsistentGraphs:
    def test_empty_graph(self):
        assert is_consistent(fresh("X"))

    def test_simple_message_passing(self):
        g = fresh("X", "Y")
        w1 = g.add_write(0, "X", 1, RLX)
        w2 = g.add_write(0, "Y", 1, REL)
        r1 = g.add_read(1, "Y", w2, ACQ)
        r2 = g.add_read(1, "X", w1, RLX)
        stamp([(w1, (1, 0)), (w2, (2, 0)), (r1, (2, 1)), (r2, (2, 2))])
        assert is_consistent(g)

    def test_rmw_chain(self):
        g = fresh("X")
        u1 = g.add_rmw(0, "X", g.mo_max("X"), 1, RLX)
        u2 = g.add_rmw(1, "X", g.mo_max("X"), 2, RLX)
        stamp([(u1, (1, 0)), (u2, (0, 1))])
        assert is_consistent(g)

    def test_sc_total_order(self):
        g = fresh("X")
        w = g.add_write(0, "X", 1, SEQ)
        r = g.add_read(1, "X", w, SEQ)
        stamp([(w, (1, 0)), (r, (1, 1))])
        assert is_consistent(g)

    def test_weak_sb_outcome_is_consistent(self):
        """The SB a=b=0 outcome is weak but perfectly consistent."""
        g = fresh("X", "Y")
        init_x = g.writes_by_loc["X"][0]
        init_y = g.writes_by_loc["Y"][0]
        wx = g.add_write(0, "X", 1, RLX)
        ry = g.add_read(0, "Y", init_y, RLX)
        wy = g.add_write(1, "Y", 1, RLX)
        rx = g.add_read(1, "X", init_x, RLX)
        stamp([(wx, (1, 0)), (ry, (2, 0)), (wy, (0, 1)), (rx, (0, 2))])
        assert is_consistent(g)


class TestViolations:
    def test_read_coherence_violation(self):
        """Same-thread reads observing mo in the wrong order: CoRR."""
        g = fresh("X")
        v1 = g.add_write(0, "X", 1, RLX)
        v2 = g.add_write(0, "X", 2, RLX)
        early = g.add_read(1, "X", v2, RLX)
        late = g.add_read(1, "X", v1, RLX)  # fr(late, v2); rf(v2, early);
        stamp([(v1, (1, 0)), (v2, (2, 0)),  # hb(early, late): cycle.
               (early, (0, 1)), (late, (0, 2))])
        assert check_read_coherence(g)
        assert not is_consistent(g)

    def test_write_coherence_violation(self):
        """A write hb-after a newer same-location write but mo-before it."""
        g = fresh("X")
        w2 = g.add_write(0, "X", 2, REL)
        r = g.add_read(1, "X", w2, ACQ)       # sw: hb(w2, .)
        w1 = g.add_write(1, "X", 1, RLX)      # hb-after w2 via the sync...
        stamp([(w2, (1, 0)), (r, (1, 1)), (w1, (1, 2))])
        # ...but force mo to place w1 *before* w2 (tamper with mo order).
        writes = g.writes_by_loc["X"]
        writes[1], writes[2] = writes[2], writes[1]
        writes[1].mo_index, writes[2].mo_index = 1, 2
        assert check_write_coherence(g)

    def test_atomicity_violation(self):
        """An RMW that skips a write is not mo-adjacent: fr; mo != ∅."""
        g = fresh("X")
        init = g.writes_by_loc["X"][0]
        w = g.add_write(0, "X", 1, RLX)
        u = g.add_rmw(1, "X", init, 10, RLX)  # reads init, skipping w
        stamp([(w, (1, 0)), (u, (0, 1))])
        assert check_atomicity(g)

    def test_irr_mo_sc_violation(self):
        g = fresh("X")
        w1 = g.add_write(0, "X", 1, SEQ)
        w2 = g.add_write(1, "X", 2, SEQ)
        stamp([(w1, (1, 0)), (w2, (0, 1))])
        # SC order contradicting mo on the same location.
        g.sc_order = [w2, w1]
        w2.sc_index, w1.sc_index = 0, 1
        assert check_irr_mo_sc(g)

    def test_rf_value_mismatch(self):
        g = fresh("X")
        w = g.add_write(0, "X", 1, RLX)
        stamp([(w, (1, 0))])
        bad = Event(uid=99, tid=1,
                    label=Label(EventKind.READ, RLX, "X", rval=42))
        bad.reads_from = w
        bad.clock = (0, 1)
        g.events.append(bad)
        assert any(v.axiom == "rf" for v in check_rf_wellformed(g))

    def test_missing_rf_source(self):
        g = fresh("X")
        orphan = Event(uid=98, tid=0,
                       label=Label(EventKind.READ, RLX, "X", rval=0))
        orphan.clock = (1,)
        g.events.append(orphan)
        assert any(v.axiom == "rf" for v in check_rf_wellformed(g))

    def test_sc_cycle_detected(self):
        """sw against a tampered SC order creates an hb ∪ rf ∪ SC cycle."""
        g = fresh("X", "Y")
        wx = g.add_write(0, "X", 1, SEQ)
        r1 = g.add_read(1, "X", wx, ACQ)   # sw(wx, r1)
        wy = g.add_write(1, "Y", 1, SEQ)   # po(r1, wy)
        stamp([(wx, (1, 0)), (r1, (1, 1)), (wy, (1, 2))])
        g.sc_order = [wy, wx]              # SC(wy, wx): closes the cycle
        wy.sc_index, wx.sc_index = 0, 1
        assert check_sc_acyclic(g)

    def test_healthy_graph_has_no_sc_cycle(self):
        g = fresh("X", "Y")
        wx = g.add_write(0, "X", 1, SEQ)
        wy = g.add_write(1, "Y", 1, SEQ)
        stamp([(wx, (1, 0)), (wy, (0, 1))])
        assert not check_sc_acyclic(g)

    def test_check_consistency_aggregates(self):
        g = fresh("X")
        init = g.writes_by_loc["X"][0]
        w = g.add_write(0, "X", 1, RLX)
        u = g.add_rmw(1, "X", init, 10, RLX)
        stamp([(w, (1, 0)), (u, (0, 1))])
        violations = check_consistency(g)
        assert any(v.axiom == "atomicity" for v in violations)
        assert not is_consistent(g)
