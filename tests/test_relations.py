"""Unit and property tests for the binary-relation algebra (Section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.relations import Relation, identity, imm, maximal


def rel(*edges):
    return Relation(edges)


class TestBasics:
    def test_contains_and_call(self):
        r = rel((1, 2), (2, 3))
        assert (1, 2) in r
        assert r(2, 3)
        assert (3, 1) not in r

    def test_len_counts_edges(self):
        assert len(rel((1, 2), (1, 3), (2, 3))) == 3
        assert len(rel()) == 0

    def test_add_idempotent(self):
        r = rel((1, 2))
        r.add(1, 2)
        assert len(r) == 1

    def test_nodes(self):
        assert rel((1, 2), (3, 4)).nodes() == {1, 2, 3, 4}

    def test_equality(self):
        assert rel((1, 2), (2, 3)) == rel((2, 3), (1, 2))
        assert rel((1, 2)) != rel((2, 1))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(rel((1, 2)))


class TestAlgebra:
    def test_union(self):
        assert rel((1, 2)) | rel((2, 3)) == rel((1, 2), (2, 3))

    def test_minus(self):
        assert rel((1, 2), (2, 3)).minus(rel((1, 2))) == rel((2, 3))

    def test_compose(self):
        assert rel((1, 2)).compose(rel((2, 3))) == rel((1, 3))

    def test_compose_empty_when_disjoint(self):
        assert rel((1, 2)).compose(rel((5, 6))).empty()

    def test_inverse(self):
        assert rel((1, 2), (3, 4)).inverse() == rel((2, 1), (4, 3))

    def test_reflexive(self):
        r = rel((1, 2)).reflexive([1, 2, 3])
        assert (1, 1) in r and (3, 3) in r and (1, 2) in r

    def test_transitive_chain(self):
        r = rel((1, 2), (2, 3), (3, 4)).transitive()
        assert (1, 4) in r and (1, 3) in r and (2, 4) in r
        assert (4, 1) not in r

    def test_transitive_cycle(self):
        r = rel((1, 2), (2, 1)).transitive()
        assert (1, 1) in r and (2, 2) in r

    def test_reflexive_transitive(self):
        r = rel((1, 2)).reflexive_transitive([1, 2, 3])
        assert (3, 3) in r and (1, 2) in r and (1, 1) in r

    def test_restrict(self):
        r = rel((1, 2), (2, 3), (3, 4)).restrict({1, 2}, {2, 3})
        assert r == rel((1, 2), (2, 3))


class TestPredicates:
    def test_irreflexive(self):
        assert rel((1, 2)).is_irreflexive()
        assert not rel((1, 1)).is_irreflexive()

    def test_acyclic(self):
        assert rel((1, 2), (2, 3)).is_acyclic()
        assert not rel((1, 2), (2, 1)).is_acyclic()
        assert not rel((1, 1)).is_acyclic()

    def test_total_over(self):
        assert rel((1, 2), (2, 3), (1, 3)).is_total_over([1, 2, 3])
        assert not rel((1, 2)).is_total_over([1, 2, 3])
        assert rel().is_total_over([])
        assert rel().is_total_over([7])


class TestDerivedOperators:
    def test_imm_drops_transitive_edges(self):
        total = rel((1, 2), (2, 3), (1, 3))
        assert imm(total) == rel((1, 2), (2, 3))

    def test_imm_of_chain_is_chain(self):
        chain = rel((1, 2), (2, 3))
        assert imm(chain) == chain

    def test_identity(self):
        assert identity([1, 2]) == rel((1, 1), (2, 2))

    def test_maximal(self):
        mo = rel((1, 2), (2, 3), (1, 3))
        assert maximal({1, 2, 3}, mo) == {3}
        assert maximal({1, 2}, mo) == {2}
        assert maximal(set(), mo) == set()

    def test_maximal_of_unrelated(self):
        assert maximal({1, 2}, rel()) == {1, 2}


# -- property-based laws --------------------------------------------------------

edge = st.tuples(st.integers(0, 7), st.integers(0, 7))
edges = st.lists(edge, max_size=20)


@settings(max_examples=60, deadline=None)
@given(edges, edges)
def test_union_commutative(e1, e2):
    assert Relation(e1) | Relation(e2) == Relation(e2) | Relation(e1)


@settings(max_examples=60, deadline=None)
@given(edges)
def test_transitive_is_idempotent(e):
    t = Relation(e).transitive()
    assert t.transitive() == t


@settings(max_examples=60, deadline=None)
@given(edges)
def test_transitive_contains_original(e):
    r = Relation(e)
    t = r.transitive()
    assert all(edge in t for edge in r.edges())


@settings(max_examples=60, deadline=None)
@given(edges)
def test_inverse_involution(e):
    r = Relation(e)
    assert r.inverse().inverse() == r


@settings(max_examples=60, deadline=None)
@given(edges)
def test_imm_subset_and_same_closure(e):
    r = Relation(e).transitive()
    m = imm(r)
    assert all(edge in r for edge in m.edges())
    if r.is_acyclic():
        # For acyclic relations imm preserves the transitive closure.
        assert m.transitive() == r


@settings(max_examples=60, deadline=None)
@given(edges, edges, edges)
def test_compose_distributes_over_union(e1, e2, e3):
    a, b, c = Relation(e1), Relation(e2), Relation(e3)
    assert a.compose(b | c) == a.compose(b) | a.compose(c)
