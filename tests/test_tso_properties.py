"""Property-based tests for the TSO engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.events import RLX, SC as SEQ
from repro.runtime import Program, fence
from repro.tso import (
    TsoDelayedWriteScheduler,
    TsoEagerScheduler,
    TsoNaiveScheduler,
    run_tso,
)

LOCS = ("X", "Y")

op_spec = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(LOCS), st.integers(1, 4)),
    st.tuples(st.just("load"), st.sampled_from(LOCS)),
    st.tuples(st.just("faa"), st.sampled_from(LOCS)),
    st.tuples(st.just("fence")),
)

program_spec = st.lists(st.lists(op_spec, min_size=1, max_size=5),
                        min_size=2, max_size=3)


def build(spec) -> Program:
    p = Program("tso-random")
    handles = {loc: p.atomic(loc, 0) for loc in LOCS}

    def make_body(ops):
        def body():
            for op in ops:
                if op[0] == "store":
                    yield handles[op[1]].store(op[2], RLX)
                elif op[0] == "load":
                    yield handles[op[1]].load(RLX)
                elif op[0] == "faa":
                    yield handles[op[1]].fetch_add(1, RLX)
                else:
                    yield fence(SEQ)

        return body

    for ops in spec:
        p.add_thread(make_body(ops))
    return p


SCHEDULERS = (
    lambda seed: TsoNaiveScheduler(seed=seed),
    lambda seed: TsoEagerScheduler(seed=seed),
    lambda seed: TsoDelayedWriteScheduler(2, 6, seed=seed),
)


@settings(max_examples=40, deadline=None)
@given(program_spec, st.integers(0, 2), st.integers(0, 500))
def test_all_stores_eventually_commit(spec, which, seed):
    result = run_tso(build(spec), SCHEDULERS[which](seed), max_steps=2000)
    assert not result.limit_exceeded
    for event in result.graph.events:
        if event.is_write and not event.is_init:
            assert event.mo_index >= 0, "store never flushed"


@settings(max_examples=40, deadline=None)
@given(program_spec, st.integers(0, 2), st.integers(0, 500))
def test_own_reads_never_go_backwards(spec, which, seed):
    """TSO store forwarding: a thread's same-location reads observe a
    non-decreasing sequence of its knowledge (committed or forwarded)."""
    result = run_tso(build(spec), SCHEDULERS[which](seed), max_steps=2000)
    last: dict = {}
    for event in result.graph.events:
        if event.reads_from is None:
            continue
        key = (event.tid, event.loc)
        mo = event.reads_from.mo_index
        if key in last:
            assert mo >= last[key], "TSO read went mo-backwards"
        last[key] = mo


@settings(max_examples=40, deadline=None)
@given(program_spec, st.integers(0, 2), st.integers(0, 500))
def test_forwarded_reads_use_own_newest(spec, which, seed):
    """If a read's source is the reader's own write, it must be the
    po-latest same-location write issued before the read."""
    result = run_tso(build(spec), SCHEDULERS[which](seed), max_steps=2000)
    for event in result.graph.events:
        source = event.reads_from
        if source is None or source.is_init or source.tid != event.tid:
            continue
        own_earlier = [
            w for w in result.graph.events_by_tid[event.tid]
            if w.is_write and w.loc == event.loc
            and w.po_index < event.po_index
        ]
        assert own_earlier, "source not issued before the read"
        assert source is own_earlier[-1], \
            "forwarded read skipped a newer own write"


@settings(max_examples=30, deadline=None)
@given(program_spec, st.integers(0, 2), st.integers(0, 500))
def test_deterministic_replay(spec, which, seed):
    make = SCHEDULERS[which]
    a = run_tso(build(spec), make(seed), max_steps=2000)
    b = run_tso(build(spec), make(seed), max_steps=2000)
    assert [(e.tid, e.label) for e in a.graph.events] \
        == [(e.tid, e.label) for e in b.graph.events]
