"""Shared test helpers: tiny programs and campaign utilities."""

from __future__ import annotations

from typing import Callable, Optional

from repro.memory.events import MemoryOrder, RLX
from repro.runtime.executor import RunResult, run_once
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler


def hit_count(program_factory: Callable[[], Program],
              scheduler_factory: Callable[[int], Scheduler],
              trials: int, max_steps: int = 20000) -> int:
    """Number of bug-finding runs over ``trials`` seeded runs."""
    return sum(
        run_once(program_factory(), scheduler_factory(seed),
                 max_steps=max_steps, keep_graph=False).bug_found
        for seed in range(trials)
    )


def single_thread_program(*ops_factory) -> Program:
    """Program with one thread executing a fixed op sequence."""
    p = Program("single")
    x = p.atomic("X", 0)

    def body():
        yield x.store(1, RLX)
        value = yield x.load(RLX)
        return value

    p.add_thread(body)
    return p


def writer_reader_program(write_order: MemoryOrder = RLX,
                          read_order: MemoryOrder = RLX,
                          values=(1, 2, 3)) -> Program:
    """One writer storing a sequence, one reader loading once."""
    p = Program("writer_reader")
    x = p.atomic("X", 0)

    def writer():
        for v in values:
            yield x.store(v, write_order)

    def reader():
        return (yield x.load(read_order))

    p.add_thread(writer)
    p.add_thread(reader)
    return p


def run_with(program: Program, scheduler: Scheduler,
             max_steps: int = 20000) -> RunResult:
    return run_once(program, scheduler, max_steps=max_steps)


class ScriptedScheduler(Scheduler):
    """Deterministic scheduler driven by a list of thread ids.

    When the script is exhausted (or names a disabled thread), it falls
    back to the lowest enabled tid.  Reads take the mo-maximal candidate
    unless ``read_picks`` supplies an mo-index offset from the tail
    (0 = latest, 1 = one older, ...), consumed one per read.
    """

    name = "scripted"

    def __init__(self, script, read_picks=None):
        super().__init__(seed=0)
        self._script = list(script)
        self._read_picks = list(read_picks or [])

    def choose_thread(self, state) -> int:
        enabled = state.enabled_tids()
        while self._script:
            tid = self._script.pop(0)
            if tid in enabled:
                return tid
        return min(enabled)

    def choose_read_from(self, state, ctx):
        offset = self._read_picks.pop(0) if self._read_picks else 0
        index = max(0, len(ctx.candidates) - 1 - offset)
        return ctx.candidates[index]
