"""Tests for the record/replay subsystem."""

import pytest

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.litmus import mp2, store_buffering
from repro.replay import (
    ReplayScheduler,
    Trace,
    find_and_record,
    minimize_trace,
    record_run,
    replay_run,
)
from repro.replay.trace import THREAD
from repro.runtime.errors import ReplayDivergenceError, ReproError
from repro.workloads import BENCHMARKS


class TestTrace:
    def test_roundtrip_json(self):
        trace = Trace(program="p", scheduler="s", seed=7)
        trace.record_thread(0)
        trace.record_read(2)
        trace.record_thread(1)
        restored = Trace.from_json(trace.to_json())
        assert restored.program == "p"
        assert restored.seed == 7
        assert restored.decisions == trace.decisions

    def test_rejects_unknown_kinds(self):
        with pytest.raises(ValueError):
            Trace.from_json('{"decisions": [["x", 1]]}')

    def test_len(self):
        trace = Trace()
        assert len(trace) == 0
        trace.record_thread(0)
        assert len(trace) == 1


class TestRecordReplay:
    def test_replay_reproduces_outcome(self):
        for seed in range(20):
            result, trace = record_run(mp2(), PCTWMScheduler(2, 3, 1,
                                                             seed=seed))
            again = replay_run(mp2(), trace)
            assert again.bug_found == result.bug_found
            assert again.thread_results == result.thread_results

    def test_replay_reproduces_exact_event_stream(self):
        result, trace = record_run(mp2(), C11TesterScheduler(seed=3))
        again = replay_run(mp2(), trace)
        original = [(e.tid, e.label) for e in result.graph.events]
        replayed = [(e.tid, e.label) for e in again.graph.events]
        assert original == replayed

    def test_replay_through_json(self):
        result, trace = record_run(store_buffering(),
                                   C11TesterScheduler(seed=5))
        again = replay_run(store_buffering(),
                           Trace.from_json(trace.to_json()))
        assert again.thread_results == result.thread_results

    def test_recording_preserves_scheduler_behaviour(self):
        """Recording must not change what the inner scheduler does."""
        plain = sum(
            __import__("repro.runtime", fromlist=["run_once"]).run_once(
                store_buffering(), PCTWMScheduler(0, 4, 1, seed=s),
                keep_graph=False).bug_found
            for s in range(20)
        )
        recorded = sum(
            record_run(store_buffering(),
                       PCTWMScheduler(0, 4, 1, seed=s))[0].bug_found
            for s in range(20)
        )
        assert plain == recorded == 20

    def test_divergence_detected_wrong_program(self):
        _result, trace = record_run(mp2(), C11TesterScheduler(seed=1))
        with pytest.raises(ReproError, match="diverg|exhaust"):
            replay_run(store_buffering(), trace)

    def test_replay_scheduler_consumption_flag(self):
        result, trace = record_run(store_buffering(),
                                   C11TesterScheduler(seed=2))
        replayer = ReplayScheduler(trace)
        from repro.runtime import run_once
        run_once(store_buffering(), replayer)
        assert replayer.fully_consumed


class TestSpinThreshold:
    def test_recorded_in_trace_and_json(self):
        _result, trace = record_run(mp2(), C11TesterScheduler(seed=0),
                                    spin_threshold=5)
        assert trace.spin_threshold == 5
        assert Trace.from_json(trace.to_json()).spin_threshold == 5

    def test_replay_defaults_to_recorded_threshold(self):
        result, trace = record_run(mp2(), C11TesterScheduler(seed=4),
                                   spin_threshold=3)
        # Defaulted replay runs under threshold 3 and stays faithful.
        again = replay_run(mp2(), trace)
        assert again.thread_results == result.thread_results

    def test_find_and_record_threads_threshold(self):
        info = BENCHMARKS["msqueue"]
        found = find_and_record(
            info.build,
            lambda s: PCTWMScheduler(0, info.paper_k_com, 1, seed=s),
            max_attempts=20, spin_threshold=6,
        )
        assert found is not None
        assert found[2].spin_threshold == 6


class TestDivergenceDetection:
    def test_leftover_decisions_raise(self):
        """A trace with unconsumed decisions means the replayed program
        is not the recorded one; strict replay must say so."""
        _result, trace = record_run(store_buffering(),
                                    C11TesterScheduler(seed=2))
        trace.decisions += [(THREAD, 0)] * 4
        with pytest.raises(ReplayDivergenceError, match="4 decisions"):
            replay_run(store_buffering(), trace)

    def test_non_strict_tolerates_leftovers(self):
        result, trace = record_run(store_buffering(),
                                   C11TesterScheduler(seed=2))
        trace.decisions += [(THREAD, 0)] * 4
        again = replay_run(store_buffering(), trace, strict=False)
        assert again.thread_results == result.thread_results

    def test_exact_trace_passes_strict(self):
        result, trace = record_run(store_buffering(),
                                   C11TesterScheduler(seed=2))
        assert replay_run(store_buffering(), trace,
                          strict=True).thread_results \
            == result.thread_results


class TestMinimizeTrace:
    def test_minimized_bug_trace_is_shorter_and_equivalent(self):
        info = BENCHMARKS["msqueue"]
        found = find_and_record(
            info.build,
            lambda s: PCTWMScheduler(0, info.paper_k_com, 1, seed=s),
            max_attempts=20,
        )
        assert found is not None
        _seed, result, trace = found
        short = minimize_trace(info.build, trace)
        assert len(short) <= len(trace)
        again = replay_run(info.build(), short)
        assert again.bug_found
        assert again.bug_message == result.bug_message

    def test_bugless_trace_is_returned_unchanged(self):
        _result, trace = record_run(store_buffering(),
                                    C11TesterScheduler(seed=9))
        assert minimize_trace(store_buffering, trace).decisions \
            == trace.decisions

    def test_rejects_trace_for_wrong_program(self):
        _result, trace = record_run(mp2(), C11TesterScheduler(seed=1))
        with pytest.raises(ValueError, match="does not replay"):
            minimize_trace(store_buffering, trace)


class TestFindAndRecord:
    def test_finds_and_replays_a_benchmark_bug(self):
        info = BENCHMARKS["msqueue"]
        found = find_and_record(
            info.build,
            lambda s: PCTWMScheduler(0, info.paper_k_com, 1, seed=s),
            max_attempts=20,
        )
        assert found is not None
        seed, result, trace = found
        assert result.bug_found
        again = replay_run(info.build(), trace)
        assert again.bug_found
        assert again.bug_message == result.bug_message

    def test_returns_none_for_bug_free_program(self):
        from repro.litmus import mp1
        assert find_and_record(
            mp1, lambda s: C11TesterScheduler(seed=s), max_attempts=10,
        ) is None
