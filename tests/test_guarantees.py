"""Tests for the theoretical bounds (Sections 2.2 and 5.4) and that the
empirical hit rates respect them."""

import pytest

from repro.core import PCTWMScheduler
from repro.core.guarantees import (
    naive_detection_probability,
    pct_lower_bound,
    pct_sample_space,
    pctwm_loose_bound,
    pctwm_lower_bound,
    pctwm_sample_space,
)
from repro.harness.stats import wilson_interval
from repro.litmus import mp2, p1
from repro.memory.events import RLX
from tests.helpers import hit_count


class TestFormulas:
    def test_pct_sample_space(self):
        assert pct_sample_space(t=2, k=10, d=1) == 2
        assert pct_sample_space(t=2, k=10, d=3) == 200

    def test_pct_lower_bound(self):
        assert pct_lower_bound(2, 10, 1) == pytest.approx(0.5)
        assert pct_lower_bound(3, 5, 2) == pytest.approx(1 / 15)

    def test_pctwm_sample_space_exact(self):
        # C(k_com, d) * d! * h^d
        assert pctwm_sample_space(k_com=3, d=2, h=1) == 6
        assert pctwm_sample_space(k_com=3, d=2, h=2) == 24
        assert pctwm_sample_space(k_com=5, d=0, h=4) == 1

    def test_pctwm_lower_bound(self):
        assert pctwm_lower_bound(3, 2, 1) == pytest.approx(1 / 6)
        assert pctwm_lower_bound(10, 0, 1) == pytest.approx(1.0)

    def test_loose_bound_is_looser(self):
        for k_com, d, h in ((3, 2, 1), (10, 3, 2), (5, 1, 4)):
            assert pctwm_loose_bound(k_com, d, h) \
                <= pctwm_lower_bound(k_com, d, h) + 1e-12

    def test_naive_probability(self):
        assert naive_detection_probability(2, 3) == pytest.approx(1 / 8)
        assert naive_detection_probability(2, 0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pct_sample_space(0, 5, 1)
        with pytest.raises(ValueError):
            pctwm_sample_space(5, -1, 1)
        with pytest.raises(ValueError):
            pctwm_sample_space(2, 5, 1)  # d > k_com
        with pytest.raises(ValueError):
            naive_detection_probability(0, 1)


class TestEmpiricalRatesRespectBounds:
    """The guarantee: a target execution is sampled with probability at
    least the bound — so over many trials the hit rate's confidence
    interval must not fall below it."""

    def test_p1_d1_h1(self):
        trials = 300
        hits = hit_count(lambda: p1(k=5, order=RLX),
                         lambda s: PCTWMScheduler(1, 1, 1, seed=s), trials)
        low, _high = wilson_interval(hits, trials)
        assert low >= pctwm_lower_bound(k_com=1, d=1, h=1) - 0.05

    def test_p1_d1_h2(self):
        trials = 400
        hits = hit_count(lambda: p1(k=5, order=RLX),
                         lambda s: PCTWMScheduler(1, 1, 2, seed=s), trials)
        _low, high = wilson_interval(hits, trials)
        bound = pctwm_lower_bound(k_com=1, d=1, h=2)  # 1/2
        assert high >= bound  # hit rate is consistent with >= 1/2

    def test_mp2_d2_h1(self):
        trials = 600
        hits = hit_count(mp2,
                         lambda s: PCTWMScheduler(2, 3, 1, seed=s), trials)
        _low, high = wilson_interval(hits, trials)
        # One of the P(3,2)*1 = 6 configurations triggers the bug.
        assert high >= pctwm_lower_bound(k_com=3, d=2, h=1)

    def test_bound_shrinks_with_depth(self):
        bounds = [pctwm_lower_bound(10, d, 2) for d in range(4)]
        assert bounds == sorted(bounds, reverse=True)

    def test_bound_shrinks_with_history(self):
        bounds = [pctwm_lower_bound(10, 2, h) for h in (1, 2, 3, 4)]
        assert bounds == sorted(bounds, reverse=True)
