"""Mutation tests for the consistency axioms (Section 4).

test_axioms.py checks hand-built graphs; these tests instead take graphs
produced by *real executions* (which must be consistent — the engine
maintains the axioms by construction), seed one precise violation by
tampering with rf / mo / SC edges, and assert that exactly the right
axiom fires.  This is the soundness check for the sanitizer itself: a
checker that passes consistent graphs but misses seeded violations would
make ``--sanitize`` useless.
"""


import pytest

from repro.core import C11TesterScheduler
from repro.memory.axioms import check_consistency
from repro.memory.events import RLX, SC as SEQ
from repro.runtime import run_once
from repro.runtime.program import Program


def _axioms(graph):
    return {v.axiom for v in check_consistency(graph)}


def _run(program, seed=0):
    result = run_once(program, C11TesterScheduler(seed=seed))
    graph = result.graph
    assert check_consistency(graph) == [], \
        "engine produced an inconsistent graph before any mutation"
    return graph


def _store_store_load() -> Program:
    p = Program("ssl")
    x = p.atomic("X", 0)

    def t0():
        yield x.store(1, RLX)
        yield x.store(2, RLX)
        got = yield x.load(RLX)
        return got

    p.add_thread(t0)
    return p


def _reads_of(graph, loc):
    return [e for e in graph.events
            if e.is_read and e.loc == loc and not e.is_rmw]


class TestSeededViolations:
    def test_rf_repoint_fires_read_coherence(self):
        """A read repointed to an mo-older write violates CoWR.

        The load po-follows both stores, so fr(load, w2); hb(w2, load)
        becomes a cycle once the load's rf edge is bent back to w1.
        """
        graph = _run(_store_store_load())
        (read,) = _reads_of(graph, "X")
        w1 = graph.writes_by_loc["X"][1]
        assert read.reads_from is graph.writes_by_loc["X"][2]
        read.reads_from = w1
        read.label = read.label.replace(rval=w1.label.wval)
        axioms = _axioms(graph)
        assert "read-coherence" in axioms
        assert "rf" not in axioms  # the value was fixed up: rf stays sane
        assert "atomicity" not in axioms

    def test_mo_swap_fires_write_coherence(self):
        """Reversing mo between po-ordered same-location writes: CoWW."""
        p = Program("coww-mut")
        x = p.atomic("X", 0)

        def t0():
            yield x.store(1, RLX)
            yield x.store(2, RLX)

        p.add_thread(t0)
        graph = _run(p)
        writes = graph.writes_by_loc["X"]
        writes[1], writes[2] = writes[2], writes[1]
        writes[1].mo_index, writes[2].mo_index = 1, 2
        axioms = _axioms(graph)
        assert "write-coherence" in axioms
        assert "rf" not in axioms

    def test_rmw_repoint_fires_atomicity(self):
        """An RMW bent back to a non-adjacent mo source: fr; mo != ∅."""
        p = Program("rmw-mut")
        x = p.atomic("X", 0)

        def t0():
            yield x.store(1, RLX)
            got = yield x.fetch_add(10, RLX)
            return got

        p.add_thread(t0)
        graph = _run(p)
        (rmw,) = [e for e in graph.events if e.is_rmw]
        init = graph.writes_by_loc["X"][0]
        assert rmw.reads_from is not init
        rmw.reads_from = init
        rmw.label = rmw.label.replace(rval=init.label.wval)
        axioms = _axioms(graph)
        assert "atomicity" in axioms

    def test_sc_reversal_fires_irr_mo_sc(self):
        """An SC order contradicting mo on one location: irrMOSC."""
        p = Program("sc-mut")
        x = p.atomic("X", 0)

        def t0():
            yield x.store(1, SEQ)

        def t1():
            yield x.store(2, SEQ)

        p.add_thread(t0)
        p.add_thread(t1)
        graph = _run(p)
        w1, w2 = graph.sc_order[0], graph.sc_order[1]
        graph.sc_order = [w2, w1]
        w2.sc_index, w1.sc_index = 0, 1
        axioms = _axioms(graph)
        assert "irrMOSC" in axioms
        assert "read-coherence" not in axioms
        assert "write-coherence" not in axioms

    def test_rval_tamper_fires_rf(self):
        """A read whose value differs from its rf source: rf ill-formed."""
        graph = _run(_store_store_load())
        (read,) = _reads_of(graph, "X")
        read.label = read.label.replace(rval=read.label.rval + 41)
        axioms = _axioms(graph)
        assert "rf" in axioms

    @pytest.mark.parametrize("seed", range(5))
    def test_unmutated_litmus_runs_are_consistent(self, seed):
        from repro.litmus import mp2, store_buffering

        for factory in (mp2, store_buffering):
            _run(factory(), seed=seed)
