"""Litmus-suite semantics: which outcomes each scheduler can produce."""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
)
from repro.litmus import (
    ALL_LITMUS,
    corr,
    iriw,
    load_buffering,
    message_passing,
    mp1,
    mp2,
    store_buffering,
    two_plus_two_w,
)
from repro.memory.events import ACQ, REL, SC as SEQ
from repro.runtime import run_once
from tests.helpers import hit_count

ALL_SCHEDULERS = [
    lambda s: NaiveRandomScheduler(seed=s),
    lambda s: C11TesterScheduler(seed=s),
    lambda s: PCTScheduler(2, 10, seed=s),
    lambda s: PCTWMScheduler(2, 8, 2, seed=s),
]


class TestGallerySanity:
    @pytest.mark.parametrize("name", sorted(ALL_LITMUS))
    def test_every_litmus_runs_under_every_scheduler(self, name):
        factory = ALL_LITMUS[name]
        for make in ALL_SCHEDULERS:
            result = run_once(factory(), make(0))
            assert result.steps > 0
            assert not result.limit_exceeded


class TestWeakOutcomes:
    def test_sb_found_by_weak_schedulers_only(self):
        assert hit_count(store_buffering,
                         lambda s: PCTWMScheduler(0, 4, 1, seed=s),
                         50) == 50
        assert hit_count(store_buffering,
                         lambda s: C11TesterScheduler(seed=s), 100) > 0
        assert hit_count(store_buffering,
                         lambda s: NaiveRandomScheduler(seed=s), 100) == 0

    def test_mp_relaxed_is_buggy(self):
        assert hit_count(message_passing,
                         lambda s: PCTWMScheduler(1, 3, 1, seed=s),
                         200) > 0

    def test_mp_release_acquire_is_safe(self):
        safe = lambda: message_passing(flag_store_order=REL,
                                       flag_load_order=ACQ)
        for make in ALL_SCHEDULERS:
            assert hit_count(safe, make, 150) == 0

    def test_iriw_relaxed_can_disagree(self):
        hits = sum(
            hit_count(iriw, make, 300) for make in (
                lambda s: C11TesterScheduler(seed=s),
                lambda s: PCTWMScheduler(2, 6, 1, seed=s),
            )
        )
        assert hits > 0

    def test_iriw_sc_never_disagrees(self):
        sc_iriw = lambda: iriw(order=SEQ)
        for make in ALL_SCHEDULERS:
            assert hit_count(sc_iriw, make, 200) == 0


class TestForbiddenOutcomes:
    """Outcomes the memory model must never produce, any scheduler."""

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_no_coherence_violation(self, make):
        assert hit_count(corr, make, 200) == 0

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_no_out_of_thin_air(self, make):
        assert hit_count(load_buffering, make, 200) == 0

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_mp1_fences_protect(self, make):
        assert hit_count(mp1, make, 200) == 0


class TestTwoPlusTwoW:
    def test_final_values_are_last_writes(self):
        for make in ALL_SCHEDULERS:
            result = run_once(two_plus_two_w(), make(7))
            for loc in ("X", "Y"):
                final = result.graph.mo_max(loc).label.wval
                assert final in (1, 2)


class TestMp2Structure:
    def test_bug_depth_two_manifests_only_with_both_relations(self):
        assert hit_count(mp2, lambda s: PCTWMScheduler(0, 3, 1, seed=s),
                         100) == 0
        assert hit_count(mp2, lambda s: PCTWMScheduler(1, 3, 1, seed=s),
                         100) == 0
        assert hit_count(mp2, lambda s: PCTWMScheduler(2, 3, 1, seed=s),
                         400) > 0
