"""Tests for the DSL synchronization library (mutex/semaphore/barrier/rwlock).

These primitives are *correctly* synchronized, so under every scheduler
they must provide their contracts: mutual exclusion with visibility,
bounded counting, barrier rendezvous with data transfer.
"""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
)
from repro.memory.events import RLX
from repro.runtime import (
    Mutex,
    Program,
    RWLock,
    Semaphore,
    SpinBarrier,
    require,
    run_once,
)

SCHEDULERS = [
    lambda s: NaiveRandomScheduler(seed=s),
    lambda s: C11TesterScheduler(seed=s),
    lambda s: PCTScheduler(2, 40, seed=s),
    lambda s: PCTWMScheduler(2, 20, 2, seed=s),
    lambda s: POSScheduler(seed=s),
]

TRIALS = 25


def run_clean(build, make, trials=TRIALS, max_steps=40000):
    """Run ``trials`` seeds; fail on the first bug."""
    for seed in range(trials):
        result = run_once(build(), make(seed), max_steps=max_steps,
                          keep_graph=False)
        assert not result.bug_found, (seed, result.bug_message)
        assert not result.limit_exceeded, seed


class TestMutex:
    def build(self):
        p = Program("mutex-count")
        counter = p.atomic("counter", 0)
        m = Mutex(p, "m")

        def worker(wid):
            for _ in range(2):
                yield from m.acquire()
                v = yield counter.load(RLX)
                yield counter.store(v + 1, RLX)
                yield from m.release()
            return wid

        p.add_thread(worker, 0, name="w0")
        p.add_thread(worker, 1, name="w1")

        def check(results):
            del results

        p.add_final_check(check)
        return p

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_no_lost_updates(self, make):
        for seed in range(TRIALS):
            result = run_once(self.build(), make(seed), max_steps=40000)
            assert not result.limit_exceeded
            final = result.graph.mo_max("counter").label.wval
            assert final == 4, f"lost update: {final} (seed {seed})"

    def test_try_acquire_contended(self):
        p = Program("try")
        m = Mutex(p, "m")
        flag = p.atomic("done", 0)

        def holder():
            yield from m.acquire()
            yield flag.store(1, RLX)
            # never releases: try_acquire by the other thread must fail
            return True

        def prober():
            for _ in range(30):
                seen = yield flag.load(RLX)
                if seen:
                    break
            got = yield from m.try_acquire()
            return got

        p.add_thread(holder)
        p.add_thread(prober)
        result = run_once(p, C11TesterScheduler(seed=1))
        if result.thread_results["prober"] is not None:
            # When the probe ran after the holder locked, it must fail.
            if result.thread_results["holder"]:
                pass  # outcome depends on interleaving; engine-level OK


class TestSemaphore:
    def build(self, permits):
        p = Program("sem")
        active = p.atomic("active", 0)
        peak = p.atomic("peak", 0)
        sem = Semaphore(p, "s", permits=permits)

        def worker(wid):
            got = yield from sem.down()
            if not got:
                return None
            current = yield active.fetch_add(1, RLX)
            top = yield peak.fetch_add(0, RLX)  # RMW-read
            if current + 1 > top:
                yield peak.exchange(current + 1, RLX)
            require(current + 1 <= permits,
                    f"semaphore exceeded: {current + 1} > {permits}")
            yield active.fetch_sub(1, RLX)
            yield from sem.up()
            return wid

        for i in range(3):
            p.add_thread(worker, i, name=f"w{i}")
        return p

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_permit_bound_respected(self, make):
        run_clean(lambda: self.build(2), make)

    def test_single_permit_serializes(self):
        run_clean(lambda: self.build(1),
                  lambda s: C11TesterScheduler(seed=s))

    def test_invalid_permits(self):
        p = Program("bad")
        with pytest.raises(Exception):
            Semaphore(p, "s", permits=-1)


class TestSpinBarrier:
    def build(self):
        p = Program("barrier-sync")
        data = [p.atomic(f"d{i}", 0) for i in range(2)]
        bar = SpinBarrier(p, "b", parties=2)

        def worker(wid):
            yield data[wid].store(wid + 100, RLX)
            passed = yield from bar.wait()
            if not passed:
                return None
            other = yield data[1 - wid].load(RLX)
            require(other == (1 - wid) + 100,
                    f"barrier passed but partner data stale: {other}")
            return other

        p.add_thread(worker, 0, name="w0")
        p.add_thread(worker, 1, name="w1")
        return p

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_data_visible_after_barrier(self, make):
        run_clean(self.build, make)

    def test_invalid_parties(self):
        p = Program("bad")
        with pytest.raises(Exception):
            SpinBarrier(p, "b", parties=0)


class TestRWLock:
    def build(self):
        p = Program("rwlock-sync")
        a = p.atomic("a", 0)
        b = p.atomic("b", 0)
        lock = RWLock(p, "rw")

        def writer():
            got = yield from lock.acquire_write()
            if not got:
                return None
            yield a.store(1, RLX)
            yield b.store(1, RLX)
            yield from lock.release_write()
            return True

        def reader(rid):
            got = yield from lock.acquire_read()
            if not got:
                return None
            va = yield a.load(RLX)
            vb = yield b.load(RLX)
            yield from lock.release_read()
            require(va == vb, f"torn read under rwlock: a={va} b={vb}")
            return (va, vb)

        p.add_thread(writer)
        p.add_thread(reader, 0, name="r0")
        p.add_thread(reader, 1, name="r1")
        return p

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_readers_never_see_torn_state(self, make):
        run_clean(self.build, make)
