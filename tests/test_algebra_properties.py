"""Property tests for the relation algebra and the view semilattice.

Two families of laws back the fast path's correctness argument:

* :class:`repro.memory.relations.Relation` — the Section 4 closure
  algebra used by the consistency auditor.  Transitive closure must be
  idempotent, ``imm`` must be a section of it on finite partial orders
  (the Hasse-diagram round trip), and forward-edge relations must be
  acyclic while any closed cycle must be caught.

* ``View.join`` — Definition 1's per-location mo-max join.  It must be
  a join-semilattice (commutative, associative, idempotent) and
  monotone in mo, and the array-backed :class:`FastView` must agree
  with the dict-backed reference *and* with a plain
  :func:`repro.memory.events.clock_join` on the mo-index vectors —
  that vector-clock equivalence is exactly why the fast engine may
  represent views as flat integer arrays.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.views import FastView, View
from repro.memory.events import RLX, clock_join
from repro.memory.execution import ExecutionGraph
from repro.memory.relations import Relation, imm

# -- relation algebra -------------------------------------------------------

NODES = st.integers(0, 7)

edges = st.lists(st.tuples(NODES, NODES), max_size=24)

#: Edges pointing strictly "forward" form a DAG by construction.
dag_edges = st.lists(
    st.tuples(NODES, NODES).map(sorted).filter(lambda e: e[0] != e[1])
    .map(tuple),
    max_size=24,
)


@given(edges)
@settings(max_examples=200, deadline=None)
def test_transitive_closure_idempotent(es):
    t = Relation(es).transitive()
    assert t.transitive() == t


@given(dag_edges)
@settings(max_examples=200, deadline=None)
def test_imm_transitive_round_trip(es):
    """On a finite partial order, imm is the Hasse diagram: its
    transitive closure recovers the full order."""
    t = Relation(es).transitive()
    assert imm(t).transitive() == t


@given(dag_edges)
@settings(max_examples=200, deadline=None)
def test_forward_edges_are_acyclic(es):
    r = Relation(es)
    assert r.is_acyclic()
    assert r.transitive().is_irreflexive()


@given(dag_edges.filter(lambda es: len(es) > 0))
@settings(max_examples=200, deadline=None)
def test_closing_a_cycle_is_detected(es):
    r = Relation(es)
    a, b = es[0]
    r.add(b, a)  # es[0] goes forward, so this closes a cycle
    assert not r.is_acyclic()
    assert not r.transitive().is_irreflexive()


@given(edges, edges)
@settings(max_examples=100, deadline=None)
def test_compose_absorbed_by_transitive(es1, es2):
    """B⁺ ; B⁺ ⊆ B⁺: transitivity stated through composition."""
    t = Relation(es1 + es2).transitive()
    for edge in t.compose(t).edges():
        assert edge in t


# -- view semilattice -------------------------------------------------------

LOCS = ("X", "Y", "Z")
WRITES_PER_LOC = 5


def build_graph() -> ExecutionGraph:
    g = ExecutionGraph()
    for loc in LOCS:
        g.add_init_write(loc, 0)
    for loc in LOCS:
        for value in range(1, WRITES_PER_LOC):
            g.add_write(0, loc, value, RLX)
    return g


GRAPH = build_graph()
INIT = {loc: GRAPH.writes_by_loc[loc][0] for loc in LOCS}

vectors = st.lists(
    st.integers(0, WRITES_PER_LOC - 1),
    min_size=len(LOCS), max_size=len(LOCS),
)


def dict_view(vec) -> View:
    view = View(INIT)
    for loc, index in zip(LOCS, vec):
        view.set(loc, GRAPH.writes_by_loc[loc][index])
    return view


def fast_view(vec) -> FastView:
    view = FastView(GRAPH)
    for loc, index in zip(LOCS, vec):
        view.set(loc, GRAPH.writes_by_loc[loc][index])
    return view


def joined(make, a, b):
    out = make(a)
    out.join(make(b))
    return out


@given(vectors, vectors)
@settings(max_examples=200, deadline=None)
def test_join_commutative(a, b):
    for make in (dict_view, fast_view):
        assert joined(make, a, b) == joined(make, b, a)


@given(vectors, vectors, vectors)
@settings(max_examples=200, deadline=None)
def test_join_associative(a, b, c):
    for make in (dict_view, fast_view):
        left = joined(make, a, b)
        left.join(make(c))
        right = joined(make, b, c)
        other = make(a)
        other.join(right)
        assert left == other


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_join_idempotent(a):
    for make in (dict_view, fast_view):
        assert joined(make, a, a) == make(a)


@given(vectors, vectors)
@settings(max_examples=200, deadline=None)
def test_join_is_pointwise_mo_max(a, b):
    """Monotonicity: the join holds the mo-max of both inputs per loc."""
    for make in (dict_view, fast_view):
        view = joined(make, a, b)
        for loc, ia, ib in zip(LOCS, a, b):
            assert view.get(loc).mo_index == max(ia, ib)
            assert view.get(loc).mo_index >= ia
            assert view.get(loc).mo_index >= ib


@given(vectors, vectors)
@settings(max_examples=200, deadline=None)
def test_fast_view_join_is_clock_join(a, b):
    """FastView.join on mo-index vectors IS the vector-clock join."""
    view = joined(fast_view, a, b)
    expected = clock_join(tuple(a), tuple(b))
    assert tuple(view._mo) == expected


@given(vectors, vectors)
@settings(max_examples=200, deadline=None)
def test_fast_view_agrees_with_reference_view(a, b):
    fast = joined(fast_view, a, b)
    ref = joined(dict_view, a, b)
    assert fast == ref  # FastView.__eq__ compares entries against View
    for loc in LOCS:
        assert fast.get(loc) is ref.get(loc)


@given(vectors, vectors)
@settings(max_examples=100, deadline=None)
def test_join_loc_matches_full_join_on_singletons(a, b):
    """join_loc is join restricted to one location."""
    for loc, index in zip(LOCS, b):
        event = GRAPH.writes_by_loc[loc][index]
        for make in (dict_view, fast_view):
            via_loc = make(a)
            via_loc.join_loc(loc, event)
            assert via_loc.get(loc).mo_index == max(a[LOCS.index(loc)], index)


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_copy_is_independent_snapshot(a):
    for make in (dict_view, fast_view):
        view = make(a)
        snap = view.copy()
        view.set("X", GRAPH.writes_by_loc["X"][WRITES_PER_LOC - 1])
        assert snap.get("X").mo_index == a[0]
