"""Unit and scenario tests for the execution engine."""

import pytest

from repro.core import C11TesterScheduler, NaiveRandomScheduler
from repro.memory.events import ACQ, ACQ_REL, NA, REL, RLX, SC as SEQ
from repro.runtime import (
    Program,
    ReproError,
    Scheduler,
    fence,
    join,
    require,
    run_once,
    sched_yield,
)
from tests.helpers import ScriptedScheduler


class TestBasicExecution:
    def test_single_thread_store_load(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield x.store(5, RLX)
            return (yield x.load(RLX))

        p.add_thread(t)
        result = run_once(p, NaiveRandomScheduler(seed=0))
        assert result.thread_results["t"] == 5
        assert not result.bug_found

    def test_thread_reads_own_latest_write(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield x.store(1, RLX)
            yield x.store(2, RLX)
            return (yield x.load(RLX))

        p.add_thread(t)
        result = run_once(p, C11TesterScheduler(seed=3))
        assert result.thread_results["t"] == 2  # own writes are coherent

    def test_initial_value_readable(self):
        p = Program("p")
        x = p.atomic("X", 41)

        def t():
            return (yield x.load(RLX))

        p.add_thread(t)
        assert run_once(p, NaiveRandomScheduler(seed=0)) \
            .thread_results["t"] == 41

    def test_k_and_kcom_counted(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield x.store(1, RLX)   # k only
            yield x.load(RLX)       # k and k_com
            yield fence(ACQ)        # k and k_com
            yield fence(REL)        # k only

        p.add_thread(t)
        result = run_once(p, NaiveRandomScheduler(seed=0))
        assert result.k == 4
        assert result.k_com == 2

    def test_yield_op_produces_no_event(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield sched_yield()
            yield x.load(RLX)

        p.add_thread(t)
        result = run_once(p, NaiveRandomScheduler(seed=0))
        assert result.k == 1


class TestRmwAndCas:
    def test_fetch_add_returns_old_value(self):
        p = Program("p")
        x = p.atomic("X", 10)

        def t():
            old = yield x.fetch_add(5, RLX)
            new = yield x.load(RLX)
            return (old, new)

        p.add_thread(t)
        assert run_once(p, NaiveRandomScheduler(seed=0)) \
            .thread_results["t"] == (10, 15)

    def test_concurrent_increments_never_lost(self):
        """Atomicity: two RMWs cannot read the same value."""
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield x.fetch_add(1, RLX)

        p.add_thread(t, name="a")
        p.add_thread(t, name="b")
        for seed in range(30):
            result = run_once(p, C11TesterScheduler(seed=seed))
            final = result.graph.mo_max("X").label.wval
            assert final == 2

    def test_cas_success(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            ok, old = yield x.cas(0, 9, RLX)
            return (ok, old, (yield x.load(RLX)))

        p.add_thread(t)
        assert run_once(p, NaiveRandomScheduler(seed=0)) \
            .thread_results["t"] == (True, 0, 9)

    def test_cas_failure_leaves_value(self):
        p = Program("p")
        x = p.atomic("X", 3)

        def t():
            ok, old = yield x.cas(0, 9, RLX)
            return (ok, old, (yield x.load(RLX)))

        p.add_thread(t)
        assert run_once(p, NaiveRandomScheduler(seed=0)) \
            .thread_results["t"] == (False, 3, 3)

    def test_exchange(self):
        p = Program("p")
        x = p.atomic("X", 1)

        def t():
            old = yield x.exchange(2, ACQ_REL)
            return old

        p.add_thread(t)
        assert run_once(p, NaiveRandomScheduler(seed=0)) \
            .thread_results["t"] == 1


class TestJoinAndDeadlock:
    def test_join_returns_target_result(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def worker():
            yield x.store(1, RLX)
            return "worker-result"

        def waiter():
            got = yield join("worker")
            return got

        p.add_thread(worker)
        p.add_thread(waiter)
        result = run_once(p, C11TesterScheduler(seed=0))
        assert result.thread_results["waiter"] == "worker-result"

    def test_join_establishes_happens_before(self):
        """After join, the worker's relaxed write must be visible."""
        p = Program("p")
        x = p.atomic("X", 0)

        def worker():
            yield x.store(7, RLX)

        def waiter():
            yield join("worker")
            return (yield x.load(RLX))

        p.add_thread(worker)
        p.add_thread(waiter)
        for seed in range(25):
            result = run_once(p, C11TesterScheduler(seed=seed))
            assert result.thread_results["waiter"] == 7

    def test_join_cycle_is_deadlock(self):
        p = Program("p")
        p.atomic("X", 0)

        def a():
            yield join("b")

        def b():
            yield join("a")

        p.add_thread(a)
        p.add_thread(b)
        result = run_once(p, C11TesterScheduler(seed=0))
        assert result.bug_found and result.bug_kind == "deadlock"

    def test_join_unknown_thread_raises(self):
        p = Program("p")
        p.atomic("X", 0)

        def a():
            yield join("ghost")

        p.add_thread(a)
        with pytest.raises(Exception):
            run_once(p, C11TesterScheduler(seed=0))


class TestBugDetection:
    def test_assertion_in_thread(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            value = yield x.load(RLX)
            require(value == 1, "expected 1")

        p.add_thread(t)
        result = run_once(p, NaiveRandomScheduler(seed=0))
        assert result.bug_found
        assert result.bug_kind == "assertion"
        assert "expected 1" in result.bug_message

    def test_final_check_failure(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            return (yield x.load(RLX))

        p.add_thread(t)
        p.add_final_check(lambda r: require(r["t"] == 99, "nope"))
        result = run_once(p, NaiveRandomScheduler(seed=0))
        assert result.bug_found and result.bug_kind == "assertion"

    def test_race_reported_as_bug(self):
        p = Program("p")
        d = p.non_atomic("D", 0)

        def a():
            yield d.store(1)

        def b():
            yield d.store(2)

        p.add_thread(a)
        p.add_thread(b)
        result = run_once(p, C11TesterScheduler(seed=0))
        assert result.bug_found and result.bug_kind == "race"
        assert result.races

    def test_race_suppressed_when_configured(self):
        p = Program("p")
        d = p.non_atomic("D", 0)
        p.races_are_bugs = False

        def a():
            yield d.store(1)

        def b():
            yield d.store(2)

        p.add_thread(a)
        p.add_thread(b)
        result = run_once(p, C11TesterScheduler(seed=0))
        assert not result.bug_found
        assert result.races  # still recorded, just not a failure

    def test_synchronized_na_accesses_do_not_race(self):
        p = Program("p")
        d = p.non_atomic("D", 0)
        flag = p.atomic("F", 0)

        def producer():
            yield d.store(1)
            yield flag.store(1, REL)

        def consumer():
            for _ in range(30):
                f = yield flag.load(ACQ)
                if f == 1:
                    return (yield d.load())
            return None

        p.add_thread(producer)
        p.add_thread(consumer)
        for seed in range(25):
            result = run_once(p, C11TesterScheduler(seed=seed))
            assert not result.races, f"false race at seed {seed}"


class TestLimitsAndContracts:
    def test_step_limit(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def spinner():
            while True:
                yield x.load(RLX)

        p.add_thread(spinner)
        result = run_once(p, NaiveRandomScheduler(seed=0), max_steps=50)
        assert result.limit_exceeded and not result.bug_found

    def test_scheduler_choosing_disabled_thread_raises(self):
        class BadScheduler(Scheduler):
            name = "bad"

            def choose_thread(self, state):
                return 99

        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield x.load(RLX)

        p.add_thread(t)
        with pytest.raises(ReproError):
            run_once(p, BadScheduler())

    def test_scheduler_choosing_invisible_write_raises(self):
        class BadReader(Scheduler):
            name = "badreader"

            def choose_read_from(self, state, ctx):
                from repro.memory.events import Event, EventKind, Label
                rogue = Event(uid=12345, tid=9,
                              label=Label(EventKind.WRITE, RLX, ctx.loc,
                                          wval=0))
                return rogue

        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield x.load(RLX)

        p.add_thread(t)
        with pytest.raises(ReproError):
            run_once(p, BadReader())

    def test_undeclared_location_raises(self):
        p = Program("p")
        p.atomic("X", 0)
        ghost = __import__("repro.runtime.api", fromlist=["Atomic"]) \
            .Atomic("GHOST")

        def t():
            yield ghost.load(RLX)

        p.add_thread(t)
        with pytest.raises(Exception):
            run_once(p, NaiveRandomScheduler(seed=0))

    def test_keep_graph_false(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def t():
            yield x.load(RLX)

        p.add_thread(t)
        result = run_once(p, NaiveRandomScheduler(seed=0), keep_graph=False)
        assert result.graph is None


class TestScriptedSchedules:
    def test_interleaving_control(self):
        """The scripted scheduler produces the exact interleaving asked."""
        p = Program("p")
        x = p.atomic("X", 0)
        order = []

        def a():
            order.append("a1")
            yield x.store(1, RLX)
            order.append("a2")
            yield x.store(2, RLX)

        def b():
            order.append("b1")
            yield x.store(3, RLX)

        p.add_thread(a)
        p.add_thread(b)
        run_once(p, ScriptedScheduler([0, 1, 0]))
        # Generators run eagerly to the first yield on prime: the markers
        # record op *preparation* order; the mo order records execution.

    def test_stale_read_through_read_picks(self):
        p = Program("p")
        x = p.atomic("X", 0)

        def writer():
            yield x.store(1, RLX)
            yield x.store(2, RLX)

        def reader():
            return (yield x.load(RLX))

        p.add_thread(writer)
        p.add_thread(reader)
        # Run writer fully, then reader picks one-older-than-latest.
        result = run_once(p, ScriptedScheduler([0, 0, 1], read_picks=[1]))
        assert result.thread_results["reader"] == 1


class TestSpawnedThreadClocks:
    """Spawned threads must never expose a malformed placeholder clock.

    ``ExecutionState.spawn_thread`` assigns the parent's clock itself
    (the spawn edge is hb), so no observer — scheduler hook or later
    caller — can see a zero-length clock between thread creation and
    the caller's bookkeeping.
    """

    def _spawning_program(self):
        from repro.runtime import spawn

        p = Program("spawner")
        x = p.atomic("X", 0)

        def child():
            yield x.store(2, RLX)

        def parent():
            yield x.store(1, RLX)
            yield spawn(child, name="kid")
            yield join("kid")

        p.add_thread(parent)
        return p

    def test_clock_well_formed_at_creation_hook(self):
        """on_thread_created fires immediately after spawn: the clock must
        already be the parent's, not an empty placeholder."""
        observed = []

        class Watcher(NaiveRandomScheduler):
            def on_thread_created(self, state, tid, parent_tid):
                observed.append((
                    tuple(state.clocks[tid]),
                    tuple(state.clocks[parent_tid]),
                ))

        result = run_once(self._spawning_program(), Watcher(seed=0))
        assert not result.bug_found
        assert observed, "spawn never happened"
        for child_clock, parent_clock in observed:
            assert len(child_clock) > 0
            assert child_clock == parent_clock

    def test_spawn_thread_assigns_parent_clock_directly(self):
        """State-level contract, independent of the executor caller."""
        from repro.runtime.executor import ExecutionState

        state = ExecutionState(self._spawning_program())
        state.clocks[0] = (3,)

        def body():
            yield from ()

        child = state.spawn_thread(body, (), "kid", parent_tid=0)
        assert state.clocks[child.tid] == (3,)
