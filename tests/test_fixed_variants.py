"""Soundness tests: the *fixed* benchmark variants must never flag a bug.

Every workload factory accepts ``fixed=True``, building the correctly
synchronized version of the same algorithm (release/acquire publication,
seq_cst Dekker flags, Boehm's seqlock fences, atomic app cells).  A tool
that reports a bug on these would be unsound; these tests exercise the
full fence / release-sequence / SC machinery of the memory model in the
process.
"""

import pytest

from repro.core import C11TesterScheduler, NaiveRandomScheduler, \
    PCTScheduler, PCTWMScheduler
from repro.core.depth import estimate_parameters
from repro.runtime import run_once
from repro.workloads import BENCHMARKS, BENCHMARK_ORDER
from repro.workloads.apps import APPLICATIONS

TRIALS = 60


@pytest.fixture(params=BENCHMARK_ORDER)
def info(request):
    return BENCHMARKS[request.param]


class TestFixedBenchmarksAreClean:
    def test_under_c11tester(self, info):
        for seed in range(TRIALS):
            result = run_once(info.factory(fixed=True),
                              C11TesterScheduler(seed=seed),
                              keep_graph=False)
            assert not result.bug_found, \
                f"{info.name}-fixed flagged: {result.bug_message}"

    def test_under_pctwm_depth_sweep(self, info):
        est = estimate_parameters(info.factory(fixed=True), runs=2)
        for depth in (0, 1, 2, 3):
            for seed in range(TRIALS // 3):
                result = run_once(
                    info.factory(fixed=True),
                    PCTWMScheduler(depth, est.k_com, 2,
                                   seed=seed * 13 + depth),
                    keep_graph=False,
                )
                assert not result.bug_found, \
                    f"{info.name}-fixed flagged at d={depth}"

    def test_under_pct(self, info):
        est = estimate_parameters(info.factory(fixed=True), runs=2)
        for seed in range(TRIALS // 2):
            result = run_once(info.factory(fixed=True),
                              PCTScheduler(3, est.k, seed=seed),
                              keep_graph=False)
            assert not result.bug_found

    def test_under_naive(self, info):
        for seed in range(TRIALS // 2):
            result = run_once(info.factory(fixed=True),
                              NaiveRandomScheduler(seed=seed),
                              keep_graph=False)
            assert not result.bug_found

    def test_fixed_programs_are_named(self, info):
        assert info.factory(fixed=True).name.endswith("-fixed")


class TestBuggyCounterparts:
    """The same factories with ``fixed=False`` must remain detectable —
    guards against the fix accidentally weakening the buggy variant."""

    @pytest.mark.parametrize("name", ["dekker", "msqueue"])
    def test_depth_zero_bugs_unaffected(self, name):
        info = BENCHMARKS[name]
        for seed in range(20):
            result = run_once(info.factory(fixed=False),
                              PCTWMScheduler(0, info.paper_k_com, 1,
                                             seed=seed),
                              keep_graph=False)
            assert result.bug_found


class TestFixedApplications:
    @pytest.fixture(params=sorted(APPLICATIONS))
    def factory(self, request):
        return APPLICATIONS[request.param]

    def test_no_race_under_c11tester(self, factory):
        for seed in range(15):
            result = run_once(factory(fixed=True),
                              C11TesterScheduler(seed=seed),
                              keep_graph=False, max_steps=100000)
            assert not result.races

    def test_no_race_under_pctwm(self, factory):
        est = estimate_parameters(factory(fixed=True), runs=2)
        for seed in range(15):
            result = run_once(factory(fixed=True),
                              PCTWMScheduler(2, est.k_com, 2, seed=seed),
                              keep_graph=False, max_steps=100000)
            assert not result.races

    def test_buggy_counterpart_still_races(self, factory):
        result = run_once(factory(fixed=False), C11TesterScheduler(seed=0),
                          keep_graph=False, max_steps=100000)
        assert result.races
