"""Tests for replayable bug artifacts.

The contract under test: every failing campaign trial emits a JSON
artifact *from inside the worker process*, the parent (or any fresh
process) can deserialize it and re-execute it deterministically, and the
replay's outcome is identical to the recorded one.
"""

import glob
import json
import os

import pytest

from repro.core.factory import SchedulerSpec
from repro.harness.artifact import (
    BugArtifact,
    classify_outcome,
    load_artifact,
    replay_artifact,
)
from repro.harness.campaign import run_campaign
from repro.harness.parallel import run_campaign_parallel
from repro.memory.events import RLX
from repro.memory.visibility import VisibilityTracker
from repro.replay import replay_run
from repro.runtime.executor import RunResult
from repro.runtime.program import Program
from repro.workloads import BENCHMARKS
from repro.workloads.registry import ProgramSpec

MSQUEUE = ProgramSpec("msqueue")
PCTWM_SPEC = SchedulerSpec("pctwm", {"depth": 0, "k_com": 31, "history": 1})


def _store_store_load() -> Program:
    """Deterministically coherence-violating under a broken visibility
    tracker: the thread is forced to read mo-before its own writes."""
    p = Program("ssl")
    x = p.atomic("X", 0)

    def t0():
        yield x.store(1, RLX)
        yield x.store(2, RLX)
        got = yield x.load(RLX)
        return got

    p.add_thread(t0)
    return p


def _crashing_program() -> Program:
    p = Program("crasher")
    x = p.atomic("X", 0)

    def t0():
        yield x.store(1, RLX)
        raise RuntimeError("injected workload crash")

    p.add_thread(t0)
    return p


class TestClassifyOutcome:
    def test_priorities(self):
        assert classify_outcome(None, "Boom") == "error"
        assert classify_outcome(None, None) is None
        clean = RunResult(program="p", scheduler="s")
        assert classify_outcome(clean, None) is None
        bug = RunResult(program="p", scheduler="s", bug_found=True)
        assert classify_outcome(bug, None) == "bug"
        timeout = RunResult(program="p", scheduler="s", timed_out=True)
        assert classify_outcome(timeout, None) == "timeout"
        # An inconsistent graph outranks the bug verdict it invalidates.
        tainted = RunResult(program="p", scheduler="s", bug_found=True,
                            violations=["read-coherence: ..."])
        assert classify_outcome(tainted, None) == "inconsistent"


class TestSerialArtifacts:
    def test_bug_artifact_roundtrip_and_replay(self, tmp_path):
        result = run_campaign(MSQUEUE, PCTWM_SPEC, trials=10, base_seed=3,
                              artifact_dir=str(tmp_path))
        assert result.hits > 0
        assert len(result.artifacts) == result.hits
        artifact = load_artifact(result.artifacts[0])
        assert artifact.outcome == "bug"
        assert artifact.program_spec == {"kind": "benchmark",
                                         "name": "msqueue", "params": {}}
        assert artifact.scheduler_spec == {
            "name": "pctwm",
            "params": {"depth": 0, "k_com": 31, "history": 1}}
        # JSON round-trip is exact, including the fingerprint.
        again = BugArtifact.from_json(artifact.to_json())
        assert again.to_json() == artifact.to_json()
        assert again.fingerprint == artifact.fingerprint
        report = replay_artifact(artifact)
        assert report.matched, report.mismatch
        assert report.result.bug_kind == artifact.bug_kind
        assert report.result.bug_message == artifact.bug_message

    def test_replay_is_bit_identical(self, tmp_path):
        result = run_campaign(MSQUEUE, PCTWM_SPEC, trials=5, base_seed=3,
                              artifact_dir=str(tmp_path))
        artifact = load_artifact(result.artifacts[0])
        first = replay_run(MSQUEUE(), artifact.trace)
        second = replay_run(MSQUEUE(), artifact.trace)
        assert first.thread_results == second.thread_results
        assert first.steps == second.steps == artifact.steps

    def test_minimized_artifact_is_shorter_and_still_replays(self,
                                                             tmp_path):
        result = run_campaign(MSQUEUE, PCTWM_SPEC, trials=5, base_seed=3,
                              artifact_dir=str(tmp_path))
        artifact = load_artifact(result.artifacts[0])
        report = replay_artifact(artifact, minimize=True)
        assert report.matched
        assert report.minimized is not None
        assert len(report.minimized) <= len(artifact.trace)
        again = replay_run(MSQUEUE(), report.minimized)
        assert again.bug_found
        assert again.bug_message == artifact.bug_message

    def test_error_artifact_replays_same_error(self, tmp_path):
        result = run_campaign(
            _crashing_program, PCTWM_SPEC, trials=2,
            artifact_dir=str(tmp_path))
        assert result.errors == 2
        artifact = load_artifact(result.artifacts[0])
        assert artifact.outcome == "error"
        assert "injected workload crash" in artifact.error
        assert artifact.program_spec is None  # closures carry no spec
        with pytest.raises(ValueError, match="program spec"):
            replay_artifact(artifact)
        report = replay_artifact(artifact,
                                 program_factory=_crashing_program)
        assert report.matched, report.mismatch
        assert report.error == artifact.error

    def test_inconsistent_artifact_replays(self, tmp_path, monkeypatch):
        def evil(self, tid, loc, clock, seq_cst=False):
            return self._graph.writes_by_loc[loc][:1]

        monkeypatch.setattr(VisibilityTracker, "visible_writes", evil)
        result = run_campaign(_store_store_load,
                              SchedulerSpec("c11tester"), trials=2,
                              sanitize="all", artifact_dir=str(tmp_path))
        assert result.inconsistent == 2
        artifact = load_artifact(result.artifacts[0])
        assert artifact.outcome == "inconsistent"
        assert artifact.violations
        assert artifact.diagnostics is not None
        # The engine is still broken in this process, so the replay
        # reproduces the violation and matches.
        report = replay_artifact(artifact,
                                 program_factory=_store_store_load)
        assert report.matched, report.mismatch

    def test_clean_trials_write_no_artifacts(self, tmp_path):
        from repro.litmus import mp1

        result = run_campaign(
            mp1, SchedulerSpec("c11tester"), trials=5,
            artifact_dir=str(tmp_path))
        assert result.hits == 0
        assert result.artifacts == []
        assert glob.glob(os.path.join(str(tmp_path), "*.json")) == []


class TestWorkerArtifacts:
    def test_artifact_survives_process_boundary(self, tmp_path):
        """Workers write artifacts; the parent replays from the path."""
        result = run_campaign_parallel(
            MSQUEUE, PCTWM_SPEC, trials=12, base_seed=3, jobs=2,
            artifact_dir=str(tmp_path))
        assert result.hits > 0
        assert len(result.artifacts) == result.hits
        for path in result.artifacts:
            artifact = load_artifact(path)
            report = replay_artifact(artifact)
            assert report.matched, f"{path}: {report.mismatch}"
            assert report.result.bug_message == artifact.bug_message

    def test_parallel_matches_serial_artifacts(self, tmp_path):
        serial = run_campaign_parallel(
            MSQUEUE, PCTWM_SPEC, trials=8, base_seed=3, jobs=1,
            artifact_dir=str(tmp_path / "serial"))
        parallel = run_campaign_parallel(
            MSQUEUE, PCTWM_SPEC, trials=8, base_seed=3, jobs=2,
            artifact_dir=str(tmp_path / "parallel"))
        assert serial.hits == parallel.hits
        assert [os.path.basename(p) for p in serial.artifacts] == \
            [os.path.basename(p) for p in parallel.artifacts]
        for a, b in zip(serial.artifacts, parallel.artifacts):
            one, two = load_artifact(a), load_artifact(b)
            assert one.trace.decisions == two.trace.decisions
            assert one.fingerprint == two.fingerprint

    def test_artifacts_survive_checkpoint_resume(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        first = run_campaign_parallel(
            MSQUEUE, PCTWM_SPEC, trials=6, base_seed=3, jobs=2,
            artifact_dir=str(tmp_path), checkpoint=journal)
        assert first.artifacts
        resumed = run_campaign_parallel(
            MSQUEUE, PCTWM_SPEC, trials=6, base_seed=3, jobs=2,
            artifact_dir=str(tmp_path), checkpoint=journal, resume=True)
        assert resumed.resumed_trials == 6
        assert resumed.artifacts == first.artifacts
        report = replay_artifact(load_artifact(resumed.artifacts[0]))
        assert report.matched, report.mismatch

    def test_resume_rejects_different_sanitize_mode(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        run_campaign_parallel(MSQUEUE, PCTWM_SPEC, trials=4, base_seed=3,
                              jobs=2, checkpoint=journal, sanitize="off")
        with pytest.raises(ValueError, match="sanitize"):
            run_campaign_parallel(MSQUEUE, PCTWM_SPEC, trials=4,
                                  base_seed=3, jobs=2, checkpoint=journal,
                                  resume=True, sanitize="all")

    def test_journal_preserves_new_trial_fields(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        run_campaign_parallel(
            MSQUEUE, PCTWM_SPEC, trials=4, base_seed=3, jobs=2,
            artifact_dir=str(tmp_path), checkpoint=journal,
            sanitize="all")
        with open(journal) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        header, records = lines[0], lines[1:]
        assert header["sanitize"] == "all"
        assert all("inconsistent" in r and "artifact" in r
                   for r in records)
