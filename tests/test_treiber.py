"""Tests for the Treiber stack extension workload."""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
)
from repro.memory.axioms import is_consistent
from repro.runtime import run_once
from repro.workloads import treiber
from tests.helpers import hit_count

SCHEDULERS = [
    lambda s: NaiveRandomScheduler(seed=s),
    lambda s: C11TesterScheduler(seed=s),
    lambda s: PCTScheduler(2, 40, seed=s),
    lambda s: PCTWMScheduler(1, 20, 1, seed=s),
    lambda s: POSScheduler(seed=s),
]


class TestTreiberBuggy:
    def test_depth_zero_hits_always(self):
        assert hit_count(treiber,
                         lambda s: PCTWMScheduler(0, 20, 1, seed=s),
                         50) == 50

    def test_random_testing_hits_often(self):
        hits = hit_count(treiber, lambda s: C11TesterScheduler(seed=s),
                         150)
        assert hits > 75

    def test_executions_consistent(self):
        for seed in range(5):
            result = run_once(treiber(), C11TesterScheduler(seed=seed))
            assert is_consistent(result.graph)

    def test_lifo_structure_when_not_buggy(self):
        """Popped items (when real) come from the node pool's values."""
        result = run_once(treiber(fixed=True), C11TesterScheduler(seed=3))
        got = result.thread_results["popper"]
        assert all(v in (100, 101, 200, 201) for v in got)
        assert len(set(got)) == len(got)  # no double pops


class TestTreiberFixed:
    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_never_flags(self, make):
        for seed in range(30):
            result = run_once(treiber(fixed=True), make(seed),
                              keep_graph=False)
            assert not result.bug_found, seed
            assert not result.limit_exceeded

    def test_scales(self):
        big = run_once(treiber(pushes_per_thread=3, pushers=3),
                       C11TesterScheduler(seed=0))
        small = run_once(treiber(pushes_per_thread=1, pushers=2),
                         C11TesterScheduler(seed=0))
        assert big.k > small.k
