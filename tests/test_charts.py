"""Tests for the ASCII chart renderers."""

from repro.harness.charts import bar_chart, line_chart, line_charts
from repro.harness.figures import Figure5Bar, Figure6Series


def make_bar():
    return Figure5Bar("dekker", c11tester=50.0, pct=75.0, pctwm=100.0)


def make_series():
    s = Figure6Series("dekker")
    s.inserted = [0, 2, 4]
    s.c11tester = [50.0, 20.0, 10.0]
    s.pct = [70.0, 30.0, 15.0]
    s.pctwm = [100.0, 100.0, 100.0]
    return s


class TestBarChart:
    def test_contains_benchmark_and_values(self):
        text = bar_chart([make_bar()])
        assert "dekker" in text
        assert "100.0" in text and "50.0" in text

    def test_bar_lengths_scale(self):
        text = bar_chart([make_bar()], width=10)
        lines = text.splitlines()
        c11_line = next(line for line in lines if "#" in line and "|" in line)
        wm_line = next(line for line in lines if "*" in line and "|" in line)
        assert c11_line.count("#") < wm_line.count("*")

    def test_multiple_groups(self):
        bars = [make_bar(),
                Figure5Bar("seqlock", c11tester=25.0, pct=20.0, pctwm=10.0)]
        text = bar_chart(bars)
        assert "seqlock" in text and "dekker" in text


class TestLineChart:
    def test_grid_shape(self):
        text = line_chart(make_series(), height=10)
        lines = text.splitlines()
        assert lines[0].startswith("dekker")
        assert "100%" in lines[1]
        assert "0%" in lines[-4]
        assert "inserted writes" in lines[-1]

    def test_flat_pctwm_on_top_row(self):
        text = line_chart(make_series(), height=10)
        top_row = text.splitlines()[1]
        assert top_row.count("*") == 3  # flat at 100% across 3 points

    def test_empty_series(self):
        assert "empty" in line_chart(Figure6Series("x"))

    def test_overlap_marker(self):
        s = make_series()
        s.pct = list(s.c11tester)  # perfectly overlapping series
        text = line_chart(s)
        assert "o" in text

    def test_line_charts_concatenates(self):
        text = line_charts({"a": make_series(), "b": make_series()})
        assert text.count("hit rate vs inserted") == 2
