"""Multi-tenant admission control: auth, quotas, idempotency, audit.

Covers every new HTTP status path (401 bad token, 403 wrong tenant /
exhausted budget, 429 with Retry-After, 409 idempotency conflict), the
tenants registry and admission controller directly, the CRC/quarantine
durability layer, and the scheduler policy objects — all without real
campaign work wherever possible, so this file stays fast.
"""

import json
import os
import threading
import time

import pytest

from repro.harness.fsutil import crc_of_obj, stamp_crc, verify_crc
from repro.service import (
    AdmissionController,
    AdmissionDenied,
    AuditLog,
    CampaignDaemon,
    DeficitRoundRobin,
    JobQueue,
    JobScheduler,
    ServiceClient,
    ServiceError,
    TenantConfig,
    TenantRegistry,
    WorkerBudget,
)
from repro.service.api import make_server
from repro.service.queue import Job


def spec_dict(**overrides):
    spec = {"benchmark": "dekker", "scheduler": "naive", "trials": 16,
            "seed": 3, "jobs": 1}
    spec.update(overrides)
    return spec


def write_tenants(tmp_path, entries):
    path = str(tmp_path / "tenants.json")
    with open(path, "w") as fh:
        json.dump({"tenants": entries}, fh)
    return path


TENANTS = [
    {"id": "alice", "token": "alice-token", "rate_per_s": 1000.0,
     "burst": 1000, "max_queued_jobs": 2, "trial_budget": 64},
    {"id": "bob", "token": "bob-token", "rate_per_s": 1000.0,
     "burst": 1000},
    {"id": "ops", "token": "ops-token", "rate_per_s": 1000.0,
     "burst": 1000, "operator": True},
]


# -- CRC / durability helpers --------------------------------------------------


class TestCrcStamping:
    def test_stamp_and_verify_round_trip(self):
        obj = {"a": 1, "b": [2, 3]}
        stamped = stamp_crc(obj)
        assert verify_crc(stamped)
        assert stamped["crc32"] == crc_of_obj(obj)

    def test_tampered_object_fails(self):
        stamped = stamp_crc({"a": 1})
        stamped["a"] = 2
        assert not verify_crc(stamped)

    def test_unstamped_object_accepted(self):
        assert verify_crc({"legacy": True})

    def test_garbage_crc_fails(self):
        assert not verify_crc({"a": 1, "crc32": "nonsense"})


class TestQuarantine:
    def test_corrupt_record_quarantined_on_reload(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        good = queue.submit(spec_dict())
        bad = queue.submit(spec_dict(seed=4))
        # Bit-rot the second record *without* breaking the JSON, so only
        # the CRC can catch it.
        path = os.path.join(queue.jobs_dir, f"{bad.id}.json")
        record = json.load(open(path))
        record["spec"]["seed"] = 999
        with open(path, "w") as fh:
            json.dump(record, fh)

        reloaded = JobQueue(str(tmp_path))
        assert [j.id for j in reloaded.list_jobs()] == [good.id]
        assert reloaded.quarantined == [f"{bad.id}.json"]
        assert os.path.exists(
            os.path.join(reloaded.quarantine_dir, f"{bad.id}.json"))
        assert not os.path.exists(path)

    def test_pre_crc_record_still_loads(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(spec_dict())
        path = os.path.join(queue.jobs_dir, f"{job.id}.json")
        record = json.load(open(path))
        del record["crc32"]
        with open(path, "w") as fh:
            json.dump(record, fh)
        reloaded = JobQueue(str(tmp_path))
        assert reloaded.get(job.id) is not None
        assert reloaded.quarantined == []


# -- tenants registry ----------------------------------------------------------


class TestTenantRegistry:
    def test_load_and_authenticate(self, tmp_path):
        registry = TenantRegistry.load(write_tenants(tmp_path, TENANTS))
        assert registry.authenticate("alice-token").id == "alice"
        assert registry.authenticate("wrong") is None
        assert registry.authenticate(None) is None
        assert registry.get("ops").operator

    def test_duplicate_token_rejected(self, tmp_path):
        entries = [{"id": "a", "token": "t"}, {"id": "b", "token": "t"}]
        with pytest.raises(ValueError, match="reuses a token"):
            TenantRegistry.load(write_tenants(tmp_path, entries))

    def test_duplicate_id_rejected(self, tmp_path):
        entries = [{"id": "a", "token": "t1"}, {"id": "a", "token": "t2"}]
        with pytest.raises(ValueError, match="twice"):
            TenantRegistry.load(write_tenants(tmp_path, entries))

    @pytest.mark.parametrize("entry,fragment", [
        ({"id": "a"}, "token"),
        ({"token": "t"}, "id"),
        ({"id": "a", "token": "t", "colour": "red"}, "unknown tenant"),
        ({"id": "a", "token": "t", "rate_per_s": 0}, "rate_per_s"),
        ({"id": "a", "token": "t", "burst": 0}, "burst"),
        ({"id": "a", "token": "t", "max_queued_jobs": 0},
         "max_queued_jobs"),
        ({"id": "a", "token": "t", "trial_budget": 0}, "trial_budget"),
        ({"id": "a", "token": "t", "weight": 0}, "weight"),
    ])
    def test_bad_entries_rejected(self, entry, fragment):
        with pytest.raises(ValueError, match=fragment):
            TenantConfig.from_dict(entry)

    def test_invalid_json_rejected(self, tmp_path):
        path = str(tmp_path / "tenants.json")
        with open(path, "w") as fh:
            fh.write("{torn")
        with pytest.raises(ValueError, match="not valid JSON"):
            TenantRegistry.load(path)


class TestAdmissionController:
    def _registry(self, tmp_path, **overrides):
        entry = dict({"id": "t", "token": "tok", "rate_per_s": 1000.0,
                      "burst": 1000}, **overrides)
        return TenantRegistry.load(write_tenants(tmp_path, [entry]))

    def test_open_mode_admits_everything(self):
        controller = AdmissionController(None)
        assert not controller.enabled
        controller.check_submit("anyone", trials=10 ** 9, queued_now=10 ** 9)

    def test_rate_limit_429_with_retry_after(self, tmp_path):
        registry = self._registry(tmp_path, rate_per_s=0.001, burst=1)
        controller = AdmissionController(registry)
        controller.check_submit("t", trials=1, queued_now=0)
        with pytest.raises(AdmissionDenied) as excinfo:
            controller.check_submit("t", trials=1, queued_now=0)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s > 0

    def test_queued_quota_429(self, tmp_path):
        registry = self._registry(tmp_path, max_queued_jobs=2)
        controller = AdmissionController(registry)
        with pytest.raises(AdmissionDenied) as excinfo:
            controller.check_submit("t", trials=1, queued_now=2)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s is not None

    def test_trial_budget_403_and_charging(self, tmp_path):
        registry = self._registry(tmp_path, trial_budget=100)
        controller = AdmissionController(registry)
        controller.check_submit("t", trials=60, queued_now=0)
        assert controller.spent_trials("t") == 60
        with pytest.raises(AdmissionDenied) as excinfo:
            controller.check_submit("t", trials=60, queued_now=0)
        assert excinfo.value.status == 403
        # A refusal charges nothing.
        assert controller.spent_trials("t") == 60
        controller.check_submit("t", trials=40, queued_now=0)

    def test_unknown_tenant_403(self, tmp_path):
        controller = AdmissionController(self._registry(tmp_path))
        with pytest.raises(AdmissionDenied) as excinfo:
            controller.check_submit("ghost", trials=1, queued_now=0)
        assert excinfo.value.status == 403


class TestAuditLog:
    def test_records_lines_and_survives_close(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        audit = AuditLog(path)
        audit.record("alice", "POST", "/jobs", 201, job_id="job-000001")
        audit.record(None, "GET", "/healthz", 401)
        audit.close()
        lines = [json.loads(line) for line in open(path)]
        assert lines[0]["tenant"] == "alice"
        assert lines[0]["job"] == "job-000001"
        assert lines[0]["status"] == 201
        assert lines[1]["tenant"] is None
        assert lines[1]["status"] == 401

    def test_disabled_log_is_a_noop(self):
        audit = AuditLog(None)
        audit.record("a", "GET", "/", 200)
        audit.close()


# -- scheduler policy ----------------------------------------------------------


def make_job(job_id, tenant, jobs=1, granted=0):
    job = Job(id=job_id, spec=spec_dict(jobs=jobs), tenant=tenant)
    job.granted_workers = granted
    return job


class TestWorkerBudget:
    def test_acquire_release(self):
        budget = WorkerBudget(4)
        assert budget.acquire(3)
        assert budget.available == 1
        assert not budget.acquire(2)
        budget.release(3)
        assert budget.available == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerBudget(0)
        with pytest.raises(ValueError):
            WorkerBudget(2).acquire(0)


class TestDeficitRoundRobin:
    def test_carried_deficit_prevents_starvation(self):
        drr = DeficitRoundRobin(lambda t: 1.0)
        # "a" keeps winning ties alphabetically but is charged each
        # time; "b"'s carried deficit must eventually win.
        winners = []
        for _ in range(4):
            winner = drr.select(["a", "b"])
            drr.charge(winner, 2.0)
            winners.append(winner)
        assert "b" in winners

    def test_weights_bias_selection(self):
        drr = DeficitRoundRobin(lambda t: 3.0 if t == "vip" else 1.0)
        wins = {"vip": 0, "basic": 0}
        for _ in range(8):
            winner = drr.select(["vip", "basic"])
            drr.charge(winner, 1.0)
            wins[winner] += 1
        assert wins["vip"] > wins["basic"]

    def test_idle_tenants_do_not_bank_credit(self):
        drr = DeficitRoundRobin(lambda t: 1.0)
        for _ in range(5):
            drr.select(["a"])
        # "b" was absent the whole time; when it shows up it competes
        # from zero, not from five banked quanta — and "a" holds five.
        assert drr.select(["a", "b"]) == "a"


class TestJobSchedulerPolicy:
    def test_single_tenant_gets_full_budget(self):
        scheduler = JobScheduler(WorkerBudget(4))
        job, grant = scheduler.next_start(
            [make_job("job-1", "a", jobs=8)], [])
        assert job.id == "job-1"
        assert grant == 4

    def test_grant_fair_capped_with_second_tenant(self):
        budget = WorkerBudget(4)
        scheduler = JobScheduler(budget, max_concurrent_jobs=4)
        running = [make_job("job-1", "a", granted=2)]
        budget.acquire(2)
        job, grant = scheduler.next_start(
            [make_job("job-2", "b", jobs=8)], running)
        assert job.id == "job-2"
        assert grant == 2  # half of 4, not the remaining 2 by accident

    def test_respects_max_concurrent_jobs(self):
        scheduler = JobScheduler(WorkerBudget(8), max_concurrent_jobs=1)
        running = [make_job("job-1", "a", granted=1)]
        assert scheduler.next_start(
            [make_job("job-2", "b")], running) is None

    def test_respects_tenant_job_cap(self):
        scheduler = JobScheduler(
            WorkerBudget(8), max_concurrent_jobs=4,
            tenant_job_cap=lambda t: 1)
        running = [make_job("job-1", "a", granted=1)]
        assert scheduler.next_start(
            [make_job("job-2", "a")], running) is None
        job, _ = scheduler.next_start(
            [make_job("job-2", "a"), make_job("job-3", "b")], running)
        assert job.tenant == "b"

    def test_preempts_over_share_job_for_starved_tenant(self):
        budget = WorkerBudget(4)
        budget.acquire(4)
        scheduler = JobScheduler(budget, max_concurrent_jobs=4)
        running = [make_job("job-1", "a", granted=4)]
        waiter = make_job("job-2", "b")
        victim = scheduler.preemption_target([waiter], running)
        assert victim.id == "job-1"
        # Never signalled twice while still running.
        assert scheduler.preemption_target([waiter], running) is None
        scheduler.job_stopped(victim)

    def test_no_preemption_when_waiter_already_runs(self):
        budget = WorkerBudget(4)
        budget.acquire(4)
        scheduler = JobScheduler(budget, max_concurrent_jobs=4)
        running = [make_job("job-1", "a", granted=3),
                   make_job("job-2", "b", granted=1)]
        assert scheduler.preemption_target(
            [make_job("job-3", "b")], running) is None

    def test_no_preemption_with_free_budget(self):
        budget = WorkerBudget(4)
        budget.acquire(2)
        scheduler = JobScheduler(budget, max_concurrent_jobs=4)
        assert scheduler.preemption_target(
            [make_job("job-2", "b")],
            [make_job("job-1", "a", granted=2)]) is None


# -- HTTP admission paths ------------------------------------------------------


def start_http(daemon):
    server = make_server(daemon, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1}, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, thread, url


@pytest.fixture
def tenanted(tmp_path):
    """A tenanted daemon behind HTTP (no scheduler thread running)."""
    tenants = write_tenants(tmp_path, TENANTS)
    audit_path = str(tmp_path / "audit.jsonl")
    daemon = CampaignDaemon(str(tmp_path / "state"), quiet=True,
                            rate_per_s=1000.0, burst=1000,
                            tenants_file=tenants,
                            audit_log_path=audit_path)
    server, thread, url = start_http(daemon)
    clients = {
        tenant["id"]: ServiceClient(url, timeout_s=10.0,
                                    token=tenant["token"], retries=0)
        for tenant in TENANTS
    }
    clients["anon"] = ServiceClient(url, timeout_s=10.0, token=None,
                                    retries=0)
    yield daemon, clients, audit_path
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    daemon.audit.close()


class TestHttpAuth:
    def test_every_route_requires_a_token(self, tenanted):
        daemon, clients, _ = tenanted
        anon = clients["anon"]
        for call in (anon.health,
                     anon.list_jobs,
                     lambda: anon.submit(spec_dict()),
                     lambda: anon.status("job-000001"),
                     lambda: anon.cancel("job-000001"),
                     anon.drain):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.code == 401

    def test_bad_token_401(self, tenanted):
        daemon, clients, _ = tenanted
        bad = ServiceClient(clients["alice"].base_url, timeout_s=10.0,
                            token="stolen", retries=0)
        with pytest.raises(ServiceError) as excinfo:
            bad.health()
        assert excinfo.value.code == 401

    def test_wrong_tenant_status_and_cancel_403(self, tenanted):
        daemon, clients, _ = tenanted
        job = clients["alice"].submit(spec_dict())
        for call in (lambda: clients["bob"].status(job["id"]),
                     lambda: clients["bob"].result(job["id"]),
                     lambda: clients["bob"].cancel(job["id"])):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.code == 403
        # The operator sees (and can cancel) everything.
        assert clients["ops"].status(job["id"])["tenant"] == "alice"
        assert clients["ops"].cancel(job["id"])["status"] == "cancelled"

    def test_job_listing_is_tenant_scoped(self, tenanted):
        daemon, clients, _ = tenanted
        clients["alice"].submit(spec_dict())
        clients["bob"].submit(spec_dict(seed=4))
        assert {j["tenant"] for j in clients["alice"].list_jobs()} \
            == {"alice"}
        assert {j["tenant"] for j in clients["ops"].list_jobs()} \
            == {"alice", "bob"}

    def test_drain_is_operator_only(self, tenanted):
        daemon, clients, _ = tenanted
        with pytest.raises(ServiceError) as excinfo:
            clients["alice"].drain()
        assert excinfo.value.code == 403
        assert not daemon.draining
        assert clients["ops"].drain() == {"status": "draining"}
        assert daemon.draining


class TestHttpQuotas:
    def test_queued_quota_429_with_retry_after_header(self, tenanted):
        daemon, clients, _ = tenanted
        clients["alice"].submit(spec_dict())
        clients["alice"].submit(spec_dict(seed=4))
        with pytest.raises(ServiceError) as excinfo:
            clients["alice"].submit(spec_dict(seed=5))
        assert excinfo.value.code == 429
        assert excinfo.value.retry_after_s >= 1
        # Bob is unaffected by Alice's quota.
        clients["bob"].submit(spec_dict())

    def test_trial_budget_403_survives_restart(self, tmp_path):
        tenants = write_tenants(tmp_path, TENANTS)
        state = str(tmp_path / "state")
        daemon1 = CampaignDaemon(state, quiet=True, tenants_file=tenants)
        daemon1.submit(spec_dict(trials=48), tenant="alice")

        # A bounced daemon rebuilds spend from the durable records, so
        # the 64-trial budget still refuses another 48.
        daemon2 = CampaignDaemon(state, quiet=True, tenants_file=tenants)
        with pytest.raises(AdmissionDenied) as excinfo:
            daemon2.submit(spec_dict(trials=48, seed=9), tenant="alice")
        assert excinfo.value.status == 403
        daemon2.submit(spec_dict(trials=16, seed=9), tenant="alice")


class TestHttpIdempotency:
    def test_same_key_same_spec_replays(self, tenanted):
        daemon, clients, _ = tenanted
        first = clients["alice"].submit(spec_dict(), idempotency_key="k1")
        replay = clients["alice"].submit(spec_dict(), idempotency_key="k1")
        assert replay["id"] == first["id"]
        assert len(clients["alice"].list_jobs()) == 1

    def test_same_key_different_spec_409(self, tenanted):
        daemon, clients, _ = tenanted
        clients["alice"].submit(spec_dict(), idempotency_key="k1")
        with pytest.raises(ServiceError) as excinfo:
            clients["alice"].submit(spec_dict(seed=9),
                                    idempotency_key="k1")
        assert excinfo.value.code == 409

    def test_keys_are_tenant_scoped(self, tenanted):
        daemon, clients, _ = tenanted
        a = clients["alice"].submit(spec_dict(), idempotency_key="k1")
        b = clients["bob"].submit(spec_dict(), idempotency_key="k1")
        assert a["id"] != b["id"]


class TestHttpAudit:
    def test_every_request_is_audited(self, tenanted):
        daemon, clients, audit_path = tenanted
        job = clients["alice"].submit(spec_dict())
        with pytest.raises(ServiceError):
            clients["anon"].health()
        clients["ops"].health()

        entries = [json.loads(line) for line in open(audit_path)]
        submit = next(e for e in entries
                      if e["method"] == "POST" and e["path"] == "/jobs")
        assert submit["tenant"] == "alice"
        assert submit["status"] == 201
        assert submit["job"] == job["id"]
        denied = next(e for e in entries if e["status"] == 401)
        assert denied["tenant"] is None
        assert any(e["tenant"] == "ops" and e["path"] == "/healthz"
                   and e["status"] == 200 for e in entries)


class TestHealthExtensions:
    def test_health_exposes_load_and_budget(self, tmp_path):
        daemon = CampaignDaemon(str(tmp_path), quiet=True,
                                worker_budget=4, max_concurrent_jobs=2)
        daemon.submit(spec_dict())
        health = daemon.health()
        assert health["queue_depth"] == 1
        assert health["running_jobs"] == []
        assert health["tenants"]["default"]["queued"] == 1
        assert health["workers"]["budget"] == 4
        assert health["workers"]["granted"] == 0
        assert health["workers"]["live"] == 0
        assert health["workers"]["utilization_pct"] == 0.0
        assert health["auth"] is False
        assert health["quarantined_records"] == 0
