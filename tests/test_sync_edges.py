"""Edge-case tests for synchronization machinery in the executor.

Covers paths not exercised by the main suites: acquire-failure CAS sync,
release sequences through chains of RMWs, fence-release to fence-acquire
chains with interleaved relaxed accesses, and SC read floors end to end.
"""

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.memory.events import ACQ, ACQ_REL, REL, RLX, SC as SEQ
from repro.runtime import Program, fence, require, run_once


def never_fails(build, make_scheduler, trials=60, **kwargs):
    for seed in range(trials):
        result = run_once(build(), make_scheduler(seed), **kwargs)
        assert not result.bug_found, (seed, result.bug_message)


SCHEDS = [
    lambda s: C11TesterScheduler(seed=s),
    lambda s: PCTWMScheduler(2, 10, 2, seed=s),
]


class TestAcquireFailureCas:
    def build(self):
        p = Program("acq-fail-cas")
        data = p.atomic("DATA", 0)
        flag = p.atomic("FLAG", 0)

        def producer():
            yield data.store(1, RLX)
            yield flag.store(7, REL)

        def consumer():
            for _ in range(20):
                # The CAS always fails (expected never matches) but its
                # failure order is acquire: observing the release store
                # must synchronize.
                ok, seen = yield flag.cas(-1, -1, RLX, failure_order=ACQ)
                assert not ok
                if seen == 7:
                    value = yield data.load(RLX)
                    require(value == 1, "acquire-failure CAS did not sync")
                    return value
            return None

        p.add_thread(producer)
        p.add_thread(consumer)
        return p

    def test_never_fails(self):
        for make in SCHEDS:
            never_fails(self.build, make, spin_threshold=5)


class TestReleaseSequenceThroughRmwChain:
    def build(self, chain_length=3):
        p = Program("rmw-chain")
        data = p.atomic("DATA", 0)
        counter = p.atomic("CTR", 0)

        def releaser():
            yield data.store(9, RLX)
            yield counter.store(100, REL)  # head of the release sequence

        def bumper(n):
            def body():
                for _ in range(n):
                    yield counter.fetch_add(1, RLX)  # rf+ chain links

            return body

        def observer():
            for _ in range(25):
                seen = yield counter.load(ACQ)
                if seen >= 100:
                    # A value >= 100 proves the rf chain passes through
                    # the release head (bumpers alone stay below 100), so
                    # rf+ must synchronize.
                    value = yield data.load(RLX)
                    require(value == 9,
                            "release sequence broken through RMW chain")
                    return value
            return None

        p.add_thread(releaser)
        p.add_thread(bumper(chain_length), name="bumper")
        p.add_thread(observer)
        return p

    def test_never_fails(self):
        for make in SCHEDS:
            never_fails(self.build, make, spin_threshold=5)

    def test_chain_without_release_head_does_not_sync(self):
        """Same shape, relaxed head: the observer may legally see stale
        data — and PCTWM at d >= 1 actually produces it."""
        p = Program("rmw-chain-norel")
        data = p.atomic("DATA", 0)
        counter = p.atomic("CTR", 0)

        def releaser():
            yield data.store(9, RLX)
            yield counter.store(1, RLX)  # no release

        def observer():
            for _ in range(10):
                seen = yield counter.load(ACQ)
                if seen >= 1:
                    return (yield data.load(RLX))
            return None

        p.add_thread(releaser)
        p.add_thread(observer)
        stale = 0
        for seed in range(200):
            result = run_once(p, PCTWMScheduler(1, 5, 1, seed=seed))
            if result.thread_results["observer"] == 0:
                stale += 1
        assert stale > 0


class TestFenceChains:
    def build(self):
        """Frel ; po ; W --rf--> R ; po ; Facq with unrelated accesses
        interleaved in both threads."""
        p = Program("fence-chain")
        data = p.atomic("DATA", 0)
        noise = p.atomic("NOISE", 0)
        flag = p.atomic("FLAG", 0)

        def producer():
            yield data.store(3, RLX)
            yield fence(REL)
            yield noise.store(1, RLX)   # interleaved unrelated store
            yield flag.store(1, RLX)    # the fence protects this one too

        def consumer():
            for _ in range(20):
                seen = yield flag.load(RLX)
                if seen == 1:
                    break
            else:
                return None
            yield noise.load(RLX)       # unrelated relaxed read
            yield fence(ACQ)
            value = yield data.load(RLX)
            require(value == 3, "fence chain failed to deliver DATA")
            return value

        p.add_thread(producer)
        p.add_thread(consumer)
        return p

    def test_never_fails(self):
        for make in SCHEDS:
            never_fails(self.build, make, spin_threshold=5)


class TestScReadFloors:
    def test_sc_read_cannot_skip_sc_write(self):
        """After an SC write is globally ordered, SC reads at that
        location must not observe anything mo-older."""
        p = Program("sc-floor")
        x = p.atomic("X", 0)

        def writer():
            yield x.store(1, RLX)
            yield x.store(2, SEQ)   # the floor
            yield x.store(3, RLX)

        def reader():
            first = yield x.load(SEQ)
            second = yield x.load(SEQ)
            require(second >= first, "SC reads went backwards")
            return (first, second)

        p.add_thread(writer)
        p.add_thread(reader)
        for seed in range(80):
            result = run_once(p, C11TesterScheduler(seed=seed))
            assert not result.bug_found
            first, _second = result.thread_results["reader"]
            # If the SC write is already globally ordered before the
            # read, values 0 and 1 are forbidden.
            sc_write = next(
                e for e in result.graph.events
                if e.is_write and e.is_sc
            )
            sc_read = next(
                e for e in result.graph.events
                if e.is_read and e.tid == 1
            )
            if sc_write.sc_index < sc_read.sc_index:
                assert first >= 2
