"""End-to-end integration: CLI, paper claims at test scale, examples."""

import subprocess
import sys

import pytest

from repro.harness import figure6, table2
from repro.harness.cli import main as cli_main
from repro.workloads import BENCHMARKS


class TestCli:
    def test_table1_command(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "dekker" in out

    def test_table2_command_with_subset(self, capsys):
        assert cli_main(["table2", "--trials", "5",
                         "--benchmarks", "dekker"]) == 0
        out = capsys.readouterr().out
        assert "Rate(d)" in out

    def test_figure5_command_with_subset(self, capsys):
        assert cli_main(["figure5", "--trials", "5",
                         "--benchmarks", "barrier"]) == 0
        out = capsys.readouterr().out
        assert "PCTWM" in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table1"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0
        assert "dekker" in proc.stdout


class TestPaperClaimsAtTestScale:
    """Small-trial versions of the headline evaluation claims."""

    def test_table2_depth_zero_rows_are_100(self):
        rows = table2(trials=25, histories=(1,), offsets=(0,),
                      benchmarks=["dekker", "msqueue"])
        for row in rows:
            assert row.rates[0] == 100.0

    def test_figure6_pctwm_stable_pct_degrades(self):
        """The Figure 6 claim on dekker: inserting benign relaxed writes
        leaves PCTWM flat while diluting PCT's uniform rf sampling."""
        series = figure6(trials=120, insert_counts=(0, 8),
                         benchmarks=["dekker"])["dekker"]
        assert series.pctwm[0] == series.pctwm[-1] == 100.0
        assert series.pct[-1] < series.pct[0]

    def test_every_benchmark_has_figure5_shape_data(self):
        # Sanity: the registry drives all evaluation entry points.
        assert all(info.paper_k_com > 0 for info in BENCHMARKS.values())


class TestExamples:
    @pytest.mark.parametrize("script", [
        "examples/quickstart.py",
    ])
    def test_example_runs(self, script):
        proc = subprocess.run(
            [sys.executable, script], capture_output=True, text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "bug found: True" in proc.stdout
