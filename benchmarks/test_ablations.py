"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes one PCTWM mechanism and measures the hit-rate delta
on a benchmark that depends on it:

1. late-as-possible sink execution  (P1: the sink must run after the writes)
2. per-location view propagation     (MP2: full-bag join destroys the bug)
3. stale local views                 (dekker/SB: eager views destroy d=0 bugs)
4. history bounding                  (P1 with many writes: h=∞ dilutes)
5. livelock heuristic                (seqlock: disabling it starves the reader)
"""

from repro.core import (
    PCTWMEagerViews,
    PCTWMFullBagJoin,
    PCTWMNoDelay,
    PCTWMScheduler,
    PCTWMUnboundedHistory,
)
from repro.core.depth import estimate_parameters
from repro.litmus import mp2, p1, store_buffering
from repro.memory.events import RLX
from repro.runtime import run_once
from repro.workloads import BENCHMARKS


def rate(factory, make_scheduler, trials, **run_kwargs) -> float:
    hits = sum(
        run_once(factory(), make_scheduler(seed), keep_graph=False,
                 **run_kwargs).bug_found
        for seed in range(trials)
    )
    return 100.0 * hits / trials


def test_ablation_late_sink_execution(benchmark, trials, report):
    def measure():
        baseline = rate(lambda: p1(k=5, order=RLX),
                        lambda s: PCTWMScheduler(1, 1, 1, seed=s), trials)
        ablated = rate(lambda: p1(k=5, order=RLX),
                       lambda s: PCTWMNoDelay(1, 1, 1, seed=s), trials)
        return baseline, ablated

    baseline, ablated = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("ablation_late_sink",
           f"P1(k=5) d=1 h=1 — baseline {baseline:.1f}% vs "
           f"no-delay {ablated:.1f}%")
    assert baseline == 100.0
    assert ablated < baseline


def test_ablation_view_granularity(benchmark, trials, report):
    def measure():
        baseline = rate(mp2, lambda s: PCTWMScheduler(2, 3, 1, seed=s),
                        4 * trials)
        ablated = rate(mp2, lambda s: PCTWMFullBagJoin(2, 3, 1, seed=s),
                       4 * trials)
        return baseline, ablated

    baseline, ablated = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("ablation_view_granularity",
           f"MP2 d=2 h=1 — baseline {baseline:.1f}% vs "
           f"full-bag-join {ablated:.1f}%")
    assert baseline > 0
    assert ablated == 0.0


def test_ablation_stale_local_views(benchmark, trials, report):
    def measure():
        baseline = rate(store_buffering,
                        lambda s: PCTWMScheduler(0, 4, 1, seed=s), trials)
        ablated = rate(store_buffering,
                       lambda s: PCTWMEagerViews(0, 4, 1, seed=s), trials)
        return baseline, ablated

    baseline, ablated = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("ablation_stale_views",
           f"SB d=0 — baseline {baseline:.1f}% vs eager-views "
           f"{ablated:.1f}%")
    assert baseline == 100.0
    assert ablated == 0.0


def test_ablation_history_bounding(benchmark, trials, report):
    def measure():
        baseline = rate(lambda: p1(k=8, order=RLX),
                        lambda s: PCTWMScheduler(1, 1, 1, seed=s), trials)
        ablated = rate(lambda: p1(k=8, order=RLX),
                       lambda s: PCTWMUnboundedHistory(1, 1, seed=s),
                       trials)
        return baseline, ablated

    baseline, ablated = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("ablation_history_bounding",
           f"P1(k=8) d=1 — h=1 {baseline:.1f}% vs h=∞ {ablated:.1f}%")
    assert baseline == 100.0
    assert ablated < 50.0


def test_ablation_livelock_heuristic(benchmark, trials, report):
    """Disable the heuristic by setting a huge spin threshold: the
    seqlock reader can never leave its wait loop at bounded depth."""
    info = BENCHMARKS["seqlock"]
    k_com = estimate_parameters(info.build(), runs=3).k_com

    def measure():
        with_heuristic = rate(
            info.build,
            lambda s: PCTWMScheduler(3, k_com, 2, seed=s),
            4 * trials, spin_threshold=8,
        )
        without = rate(
            info.build,
            lambda s: PCTWMScheduler(3, k_com, 2, seed=s),
            4 * trials, spin_threshold=10 ** 6,
        )
        return with_heuristic, without

    with_h, without_h = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("ablation_livelock",
           f"seqlock d=3 h=2 — heuristic on {with_h:.1f}% vs off "
           f"{without_h:.1f}%")
    assert with_h >= without_h
