"""Figure 6: bug-hitting rate vs number of inserted relaxed writes.

The paper's claim: inserting benign relaxed writes (same value, no effect
on behaviour or bug depth) degrades PCT — whose reads sample uniformly over
an ever-larger visible set — while PCTWM's view-based, history-bounded
reads stay stable.
"""

from repro.harness import figure6, render_figure6


def test_figure6(benchmark, trials, report):
    series = benchmark.pedantic(
        lambda: figure6(trials=trials, insert_counts=(0, 2, 4, 6, 8, 10)),
        rounds=1, iterations=1,
    )
    report("figure6", render_figure6(series))

    assert set(series) == {"dekker", "cldeque", "mpmcqueue", "rwlock"}

    dekker = series["dekker"]
    # PCTWM stays flat at 100% on dekker regardless of inserted writes.
    assert all(rate == 100.0 for rate in dekker.pctwm)
    # PCT degrades: the last point is clearly below the first.
    assert dekker.pct[-1] <= dekker.pct[0] - 10

    # Across the four benchmarks, PCTWM's spread (max-min) stays small
    # relative to PCT's degradation on dekker-style staleness bugs.
    for name in ("dekker", "cldeque", "mpmcqueue"):
        s = series[name]
        assert max(s.pctwm) - min(s.pctwm) <= 35, name
