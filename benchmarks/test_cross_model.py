"""Cross-model litmus matrix: C11 vs x86-TSO (extension).

Demonstrates the paper's memory-model-agnostic construction (Section 5):
the weakness-bounding recipe instantiated for TSO (delayed stores) hits
TSO's only weak shape — SB — deterministically at full depth, while the
shapes TSO forbids (MP, IRIW, LB, MP2) stay at zero under every TSO
scheduler and remain reachable under C11 relaxed atomics.
"""

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.litmus import iriw, load_buffering, message_passing, mp2, \
    store_buffering
from repro.runtime import run_once
from repro.tso import TsoDelayedWriteScheduler, TsoNaiveScheduler, run_tso

CASES = {
    "SB": store_buffering,
    "MP": message_passing,
    "MP2": mp2,
    "IRIW": iriw,
    "LB": load_buffering,
}


def test_cross_model_matrix(benchmark, trials, report):
    def measure():
        rows = {}
        for name, factory in CASES.items():
            c11 = sum(
                run_once(factory(), C11TesterScheduler(seed=s),
                         keep_graph=False).bug_found
                for s in range(trials)
            )
            wm = sum(
                run_once(factory(), PCTWMScheduler(2, 6, 2, seed=s),
                         keep_graph=False).bug_found
                for s in range(trials)
            )
            tso = sum(
                run_tso(factory(), TsoNaiveScheduler(seed=s),
                        keep_graph=False).bug_found
                for s in range(trials)
            )
            delayed = sum(
                run_tso(factory(), TsoDelayedWriteScheduler(2, 2, seed=s),
                        keep_graph=False).bug_found
                for s in range(trials)
            )
            rows[name] = (c11, wm, tso, delayed)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'litmus':6s} {'c11-rand':>9s} {'c11-pctwm':>10s} "
             f"{'tso-rand':>9s} {'tso-delayed':>12s}   (hits/{trials})"]
    for name, (c11, wm, tso, delayed) in rows.items():
        lines.append(f"{name:6s} {c11:9d} {wm:10d} {tso:9d} {delayed:12d}")
    report("cross_model", "\n".join(lines))

    # SB: weak under both models; deterministic for tso-delayed at d=2.
    assert rows["SB"][3] == trials
    assert rows["SB"][2] > 0
    # TSO forbids everything else.
    for name in ("MP", "MP2", "IRIW", "LB"):
        assert rows[name][2] == 0, name
        assert rows[name][3] == 0, name
    # C11 relaxed allows MP (and usually MP2/IRIW at larger trials).
    assert rows["MP"][0] + rows["MP"][1] > 0
