"""Table 4: testing performance on the real-world application models.

The paper's claims checked here:

* both C11Tester and PCTWM detect data races in all applications, in
  every run, single or multiple cores;
* PCTWM carries a modest overhead (view maintenance) on elapsed time;
* the core configuration does not matter (one thread runs at a time).
"""

import os

from repro.harness import render_table4, table4


def test_table4(benchmark, report):
    runs = int(os.environ.get("REPRO_APP_RUNS", 10))
    rows = benchmark.pedantic(
        lambda: table4(runs=runs, scale=2), rounds=1, iterations=1
    )
    report("table4", render_table4(rows))

    assert len(rows) == 6
    for row in rows:
        # Races detected in every run by both algorithms.
        assert row.c11tester_races == row.runs
        assert row.pctwm_races == row.runs

    # Elapsed-time apps: PCTWM may be slower but within 3x (the paper
    # reports 10-16%; Python timing noise is larger at this scale).
    for row in rows:
        if row.metric == "time/s":
            assert row.pctwm < row.c11tester * 3.0

    # Throughput metric present for silo.
    silo_rows = [r for r in rows if r.application == "silo"]
    assert all(r.c11tester > 0 and r.pctwm > 0 for r in silo_rows)
