"""Shared configuration for the reproduction benchmarks.

Trial counts are environment-tunable so the suite can run both in CI
(small) and at paper scale:

    REPRO_TRIALS=1000 pytest benchmarks/test_table2_depth_sweep.py --benchmark-only

Each benchmark writes its rendered table/figure to benchmarks/output/ and
echoes it to the terminal, so the regenerated artifacts are inspectable
after the run.  Benchmarks that produce numbers (not just rendered text)
additionally append machine-readable rows through the ``bench_json``
fixture, which lands them in ``benchmarks/output/bench_rows.json`` at
session end for trend tooling to consume.
"""

import json
import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def trials_default(default: int = 60) -> int:
    """``$REPRO_TRIALS`` as a validated positive int.

    A malformed value aborts with a message naming the variable instead
    of surfacing as a bare ``ValueError`` from ``int()`` deep inside a
    fixture traceback.
    """
    raw = os.environ.get("REPRO_TRIALS")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise pytest.UsageError(
            f"REPRO_TRIALS must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise pytest.UsageError(
            f"REPRO_TRIALS must be >= 1, got {value}"
        )
    return value


@pytest.fixture(scope="session")
def trials() -> int:
    """Runs per configuration (the paper uses 1000 / 500)."""
    return trials_default()


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def report(output_dir):
    """Save a rendered artifact and echo it."""

    def _report(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _report


@pytest.fixture(scope="session")
def bench_json(output_dir):
    """Collect machine-readable benchmark rows; written at session end.

    Usage: ``bench_json(benchmark="silo", scheduler="pctwm",
    events_per_sec=...)``.  Every row the session records is dumped as
    one JSON document to ``benchmarks/output/bench_rows.json``, so table
    benchmarks emit data a trend dashboard can diff without scraping the
    rendered text artifacts.
    """
    rows = []

    def add(**fields) -> None:
        rows.append(dict(fields))

    yield add
    if rows:
        path = output_dir / "bench_rows.json"
        path.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"\n[{len(rows)} benchmark rows saved to {path}]")
