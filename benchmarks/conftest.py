"""Shared configuration for the reproduction benchmarks.

Trial counts are environment-tunable so the suite can run both in CI
(small) and at paper scale:

    REPRO_TRIALS=1000 pytest benchmarks/test_table2_depth_sweep.py --benchmark-only

Each benchmark writes its rendered table/figure to benchmarks/output/ and
echoes it to the terminal, so the regenerated artifacts are inspectable
after the run.
"""

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def trials_default(default: int = 60) -> int:
    return int(os.environ.get("REPRO_TRIALS", default))


@pytest.fixture(scope="session")
def trials() -> int:
    """Runs per configuration (the paper uses 1000 / 500)."""
    return trials_default()


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def report(output_dir):
    """Save a rendered artifact and echo it."""

    def _report(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _report
