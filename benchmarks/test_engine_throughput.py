"""Engine micro-benchmarks: events/second through each scheduler.

Not a paper table — supporting data for Table 4's overhead story: the gap
between C11Tester and PCTWM here is the cost of view/bag maintenance,
and the fast/reference split measures what the incremental caches buy.
Rows land in ``benchmarks/output/bench_rows.json`` via ``bench_json``;
``python -m repro bench`` produces the committed trajectory from the
same workload/scheduler grid.
"""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
)
from repro.runtime import run_once
from repro.workloads.apps import silo

FACTORIES = {
    "naive": lambda s: NaiveRandomScheduler(seed=s),
    "c11tester": lambda s: C11TesterScheduler(seed=s),
    "pct": lambda s: PCTScheduler(2, 120, seed=s),
    "pctwm": lambda s: PCTWMScheduler(2, 100, 2, seed=s),
    "pos": lambda s: POSScheduler(seed=s),
}


@pytest.mark.parametrize("engine", ("fast", "reference"))
@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_events_per_second(benchmark, bench_json, name, engine):
    make = FACTORIES[name]
    seeds = iter(range(10 ** 6))

    def one_run():
        return run_once(silo(workers=3, transactions=6), make(next(seeds)),
                        keep_graph=False, max_steps=100000, engine=engine)

    result = benchmark(one_run)
    assert result.k > 0
    mean_s = benchmark.stats.stats.mean
    bench_json(
        suite="engine_throughput",
        benchmark="silo",
        scheduler=name,
        engine=engine,
        events_per_run=result.k,
        mean_run_s=mean_s,
        events_per_sec=result.k / mean_s,
    )
