"""Sampling concentration: the mechanism behind Section 5.4's guarantee.

PCTWM's bound comes from *restricting* the sampled execution set to
``C(k_com, d) · d! · h^d`` configurations.  This benchmark measures the
number of distinct execution behaviours (reads-from signatures) each
algorithm samples over a campaign: PCTWM concentrates its trials on few
behaviours (hitting each with high probability), C11Tester spreads over
many.
"""

from repro.core.guarantees import pctwm_sample_space
from repro.harness import coverage_campaign
from repro.core import C11TesterScheduler, PCTScheduler, PCTWMScheduler
from repro.litmus import mp2, store_buffering


def test_concentration_sb(benchmark, trials, report):
    def measure():
        return {
            "pctwm d=0": coverage_campaign(
                store_buffering,
                lambda s: PCTWMScheduler(0, 4, 1, seed=s), trials),
            "pctwm d=1": coverage_campaign(
                store_buffering,
                lambda s: PCTWMScheduler(1, 4, 1, seed=s), trials),
            "pct d=2": coverage_campaign(
                store_buffering,
                lambda s: PCTScheduler(2, 6, seed=s), trials),
            "c11tester": coverage_campaign(
                store_buffering,
                lambda s: C11TesterScheduler(seed=s), trials),
        }

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["SB — distinct behaviours sampled over "
             f"{trials} trials (lower = more concentrated)"]
    for name, rep in reports.items():
        lines.append(
            f"  {name:12s} distinct={rep.distinct:3d} "
            f"buggy-signatures={rep.bug_signatures}"
        )
    report("coverage_sb", "\n".join(lines))

    # d=0 samples exactly the single no-communication execution.
    assert reports["pctwm d=0"].distinct == 1
    # The unrestricted testers spread over more behaviours.
    assert reports["c11tester"].distinct > reports["pctwm d=0"].distinct


def test_sample_space_bound_mp2(benchmark, trials, report):
    """Distinct MP2 behaviours at (d=2, h=1) never exceed the bound."""
    def measure():
        return coverage_campaign(
            mp2, lambda s: PCTWMScheduler(2, 3, 1, seed=s), 4 * trials)

    rep = benchmark.pedantic(measure, rounds=1, iterations=1)
    bound = pctwm_sample_space(3, 2, 1) + pctwm_sample_space(3, 1, 1) + 1
    report("coverage_mp2",
           f"MP2 (d=2, h=1): distinct={rep.distinct} over {4 * trials} "
           f"trials; Section 5.4 configuration count C(3,2)·2!·1 = "
           f"{pctwm_sample_space(3, 2, 1)}")
    # Branching makes behaviours a coarser partition than configurations,
    # and unused sinks fall back to shallower executions: the distinct
    # count stays within the union of the d<=2 configuration spaces.
    assert rep.distinct <= bound
