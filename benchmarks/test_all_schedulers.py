"""Extended Figure 5: all six algorithms on the nine benchmarks.

Beyond the paper's three-way comparison, this adds the related-work
baselines implemented as extensions (POS, PPCT) and the naive SC random
walk, with a significance annotation for the headline PCTWM-vs-C11Tester
comparison.
"""

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
    PPCTScheduler,
)
from repro.core.depth import estimate_parameters
from repro.harness import run_campaign, significantly_greater
from repro.workloads import BENCHMARKS


def test_all_schedulers(benchmark, trials, report):
    def measure():
        rows = {}
        for name, info in BENCHMARKS.items():
            est = estimate_parameters(info.build(), runs=3)
            d, h = info.measured_depth, info.best_history
            campaigns = {
                "naive": run_campaign(
                    info.build, lambda s: NaiveRandomScheduler(seed=s),
                    trials=trials),
                "c11tester": run_campaign(
                    info.build, lambda s: C11TesterScheduler(seed=s),
                    trials=trials),
                "pos": run_campaign(
                    info.build, lambda s: POSScheduler(seed=s),
                    trials=trials),
                "pct": run_campaign(
                    info.build,
                    lambda s: PCTScheduler(max(d, 1) + 1, est.k, seed=s),
                    trials=trials),
                "ppct": run_campaign(
                    info.build,
                    lambda s: PPCTScheduler(max(d, 1) + 1, est.k, seed=s),
                    trials=trials),
                "pctwm": run_campaign(
                    info.build,
                    lambda s: PCTWMScheduler(d, est.k_com, h, seed=s),
                    trials=trials),
            }
            rows[name] = campaigns
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    algos = ["naive", "c11tester", "pos", "pct", "ppct", "pctwm"]
    lines = [
        f"{'benchmark':13s} " + " ".join(f"{a:>9s}" for a in algos)
        + "   pctwm>c11t?"
    ]
    for name, campaigns in rows.items():
        wm, c11 = campaigns["pctwm"], campaigns["c11tester"]
        sig = significantly_greater(wm.hits, wm.trials, c11.hits,
                                    c11.trials)
        lines.append(
            f"{name:13s} "
            + " ".join(f"{campaigns[a].hit_rate:8.1f}%" for a in algos)
            + ("   significant" if sig else "")
        )
    report("all_schedulers", "\n".join(lines))

    # Weak d=0 bugs are invisible to the SC-only naive walk but not to
    # the weak-memory samplers.
    assert rows["dekker"]["naive"].hit_rate == 0.0
    assert rows["dekker"]["pctwm"].hit_rate == 100.0
    # The headline comparison is statistically significant on the
    # stale-view benchmarks.
    for name in ("dekker", "cldeque", "linuxrwlocks"):
        wm, c11 = rows[name]["pctwm"], rows[name]["c11tester"]
        assert significantly_greater(wm.hits, wm.trials,
                                     c11.hits, c11.trials), name
