"""Table 3: PCTWM bug-hitting rates for history depth h = 1..4.

The paper's observation: the rates change only mildly with h on these
benchmarks (few visible writes per location), with seqlock preferring
h >= 2 (its torn pair needs an older-round value).
"""

from repro.harness import render_table3, table3


def test_table3(benchmark, trials, report):
    rows = benchmark.pedantic(
        lambda: table3(trials=trials, histories=(1, 2, 3, 4)),
        rounds=1, iterations=1,
    )
    report("table3", render_table3(rows))

    by_name = {r.benchmark: r for r in rows}
    # Depth-0 benchmarks are insensitive to h: there is no global read.
    for name in ("dekker", "msqueue"):
        rates = by_name[name].rates
        assert rates[1] == rates[4] == 100.0
    # The rates vary only mildly with h overall (within 40 points).
    for row in rows:
        values = list(row.rates.values())
        assert max(values) - min(values) <= 60, row.benchmark
