"""Table 1: benchmark characteristics (LOC, k, k_com, d).

Regenerates the paper's Table 1 by instrumenting each of the nine data
structure benchmarks and reporting our measured event counts and bug
depths next to the paper's.  The benchmark times the full estimation pass.
"""

from repro.harness import render_table1, table1
from repro.workloads import BENCHMARKS


def test_table1(benchmark, report):
    rows = benchmark.pedantic(
        lambda: table1(estimation_runs=5), rounds=1, iterations=1
    )
    report("table1", render_table1(rows))

    assert len(rows) == 9
    for row in rows:
        info = BENCHMARKS[row.benchmark]
        # Our measured counts must be the right order of magnitude: the
        # paper's benchmarks are small programs of tens of events.
        assert 5 <= row.measured_k <= 200
        assert 1 <= row.measured_k_com <= row.measured_k
        # Our measured depth stays within one of the paper's (deviations
        # from forced-global RMWs are documented in DESIGN.md).
        assert abs(row.measured_depth - info.paper_depth) <= 1
