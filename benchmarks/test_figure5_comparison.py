"""Figure 5: highest observed bug-hitting rates per benchmark.

The paper's claims checked here:

* PCTWM's best configuration beats or matches C11Tester on most
  benchmarks (we require: never losing by more than a small margin on
  eight of nine, and winning on average);
* seqlock is the exception where the bounded algorithms trail plain
  random testing (its wait loop fights the priority schedulers);
* on average PCT and PCTWM both improve over C11Tester, PCTWM the most.
"""

from repro.harness import figure5, render_figure5


def test_figure5(benchmark, trials, report):
    bars = benchmark.pedantic(
        lambda: figure5(trials=trials), rounds=1, iterations=1
    )
    report("figure5", render_figure5(bars))

    by_name = {b.benchmark: b for b in bars}

    # d = 0 benchmarks: PCTWM is at 100%.
    assert by_name["dekker"].pctwm == 100.0
    assert by_name["msqueue"].pctwm == 100.0

    # PCTWM never loses badly except on seqlock (margin: 10 points).
    for bar in bars:
        if bar.benchmark == "seqlock":
            continue
        assert bar.pctwm >= bar.c11tester - 10.0, (
            f"{bar.benchmark}: pctwm {bar.pctwm} vs c11t {bar.c11tester}"
        )

    # seqlock: random testing wins (Section 6.2's wait-loop discussion).
    assert by_name["seqlock"].c11tester > by_name["seqlock"].pctwm

    # Average improvement ordering: PCTWM > C11Tester.
    avg_c11 = sum(b.c11tester for b in bars) / len(bars)
    avg_wm = sum(b.pctwm for b in bars) / len(bars)
    assert avg_wm > avg_c11
