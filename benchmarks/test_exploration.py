"""Systematic-exploration benchmarks: exhaustive and ICB-bounded.

Supporting data for the randomized-vs-systematic discussion in the
paper's related work: the exhaustive explorer gives the ground-truth
execution counts and bug fractions the randomized testers sample from,
and the ICB ladder shows how quickly a small preemption bound converges
to the full behaviour set.
"""

from repro.litmus import mp1, mp2, store_buffering
from repro.modelcheck import explore, preemption_ladder


def test_exhaustive_litmus_ground_truth(benchmark, report):
    def measure():
        return {
            "SB": explore(store_buffering),
            "MP1": explore(mp1),
            "MP2": explore(mp2),
        }

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["exhaustive exploration (all schedule x rf executions)"]
    for name, rep in reports.items():
        lines.append(
            f"  {name:4s} executions={rep.executions:5d} "
            f"distinct={len(rep.signatures):3d} buggy={rep.buggy:4d} "
            f"fraction={rep.bug_fraction:.3f}"
        )
    report("exploration_ground_truth", "\n".join(lines))

    assert reports["SB"].bug_reachable
    assert reports["MP1"].buggy == 0       # exhaustive safety proof
    assert reports["MP2"].bug_reachable
    assert not any(r.truncated for r in reports.values())


def test_icb_ladder(benchmark, report):
    def measure():
        return preemption_ladder(mp2, max_bound=3)

    ladder = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["ICB ladder on MP2 (executions / buggy per preemption bound)"]
    for bound, rep in ladder.items():
        lines.append(
            f"  bound={bound}: executions={rep.executions:5d} "
            f"buggy={rep.buggy}"
        )
    report("exploration_icb", "\n".join(lines))

    # Monotone growth, and the weak bug is reachable without preemptions.
    counts = [ladder[b].executions for b in sorted(ladder)]
    assert counts == sorted(counts)
    assert ladder[0].bug_reachable
