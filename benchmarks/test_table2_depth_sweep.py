"""Table 2: PCTWM bug-hitting rates for depth d, d+1, d+2.

The paper's shape: benchmarks are detected at their bug depth with high
rates; d = 0 benchmarks hit 100%; rates stay comparable (not collapsing)
for d+1 and d+2.
"""

from repro.harness import render_table2, table2
from repro.workloads import BENCHMARKS


def test_table2(benchmark, trials, report):
    rows = benchmark.pedantic(
        lambda: table2(trials=trials, histories=(1, 2, 3, 4)),
        rounds=1, iterations=1,
    )
    report("table2", render_table2(rows))

    by_name = {r.benchmark: r for r in rows}
    # d = 0 benchmarks: the single no-communication execution always hits.
    assert by_name["dekker"].rates[0] == 100.0
    assert by_name["msqueue"].rates[0] == 100.0
    # Every benchmark is detectable at its measured depth.
    for name, row in by_name.items():
        if BENCHMARKS[name].measured_depth <= 2:
            assert row.rates[0] > 0, f"{name} undetected at its depth"
    # Deeper-than-needed runs keep finding the d = 0 bugs (paper: rates
    # decrease but stay substantial for [d, d+2]).
    assert by_name["msqueue"].rates[2] > 50
