"""Wall-clock benchmark for the sharded campaign engine.

Runs a 1000-trial campaign serially and with 4 workers, checks the two
paths produce bit-identical aggregates, and — on machines with at least
4 physical cores — asserts the parallel path is at least 2x faster.
On smaller machines the equivalence check still runs but the speedup
assertion is skipped (forked workers time-slice one core, so there is
nothing to measure).

    REPRO_TRIALS=1000 PYTHONPATH=src python -m pytest \
        benchmarks/test_parallel_speedup.py -q -s
"""

import os
import time

import pytest

from repro.core import SchedulerSpec
from repro.harness import run_campaign, run_campaign_parallel
from repro.workloads import ProgramSpec

from conftest import trials_default

JOBS = 4


def _campaign_case():
    program = ProgramSpec("dekker")
    sched = SchedulerSpec("pctwm", {"depth": 1, "k_com": 12, "history": 2})
    return program, sched


def test_parallel_matches_serial_at_scale():
    trials = trials_default(1000)
    program, sched = _campaign_case()

    t0 = time.perf_counter()
    serial = run_campaign(program, sched, trials=trials, base_seed=0)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_campaign_parallel(program, sched, trials=trials,
                                     base_seed=0, jobs=JOBS)
    parallel_s = time.perf_counter() - t0

    assert (parallel.hits, parallel.inconclusive,
            parallel.total_steps, parallel.total_events) == \
           (serial.hits, serial.inconclusive,
            serial.total_steps, serial.total_events)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    print(f"\n{trials} trials: serial {serial_s:.2f}s, "
          f"jobs={JOBS} {parallel_s:.2f}s, speedup {speedup:.2f}x "
          f"({cores} cores)")

    if cores < JOBS:
        pytest.skip(f"only {cores} core(s); speedup needs >= {JOBS}")
    assert speedup >= 2.0, (
        f"expected >= 2x speedup with {JOBS} workers on {cores} cores, "
        f"got {speedup:.2f}x")
